"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives per process (module singleton,
:func:`registry`). Hot paths create their instruments once at import time
(:func:`counter` / :func:`gauge` / :func:`histogram` are get-or-create,
so the same name always resolves to the same object) and record through
them unconditionally; every record method starts with a single
``enabled`` flag check, so with telemetry off the cost of an instrumented
call site is one attribute load and one branch — the disabled-mode
overhead contract gated by ``benchmarks/bench_obs_overhead.py``.

Cross-process aggregation: a worker snapshots the registry at task entry
and exit and ships the :func:`metrics_delta` of the two back to the
parent, which folds it in with :meth:`MetricsRegistry.merge`. With the
fork start method workers inherit the parent's counts, with spawn they
start from zero — the entry-baseline subtraction makes both cases merge
to the same totals.

Counters and histograms merge additively; gauges are last-write-wins
(a merged gauge takes the incoming sample, which for worker-reported
gauges is the worker's final value).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_delta",
    "registry",
]

#: Default histogram buckets (upper bounds) for unit-interval quantities.
UNIT_INTERVAL_BUCKETS = (0.5, 0.8, 0.9, 0.92, 0.94, 0.96, 0.98, 1.0)


class Counter:
    """Monotonically increasing count (requests served, cache hits, ...)."""

    __slots__ = ("name", "_registry", "value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (no-op while the registry is disabled)."""
        if self._registry.enabled:
            self.value += n

    def reset_values(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-observed value (arena bytes, worker count, ...)."""

    __slots__ = ("name", "_registry", "value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value (no-op while disabled)."""
        if self._registry.enabled:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the current value (no-op while disabled)."""
        if self._registry.enabled:
            self.value += delta

    def reset_values(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact sum/count (so the mean is exact).

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything above the last edge. Bucket counts lose per-sample
    resolution but ``sum``/``count``/``min``/``max`` are tracked exactly,
    so :attr:`mean` equals the arithmetic mean of every observed value —
    the property the run-manifest acceptance check relies on.
    """

    __slots__ = (
        "name",
        "_registry",
        "bounds",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "exemplars",
    )

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        bounds: tuple[float, ...] = UNIT_INTERVAL_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValidationError(f"histogram bounds must be ascending, got {bounds!r}")
        self.name = name
        self._registry = registry
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: bucket index -> (value, trace_id) of the slowest exemplar seen
        #: in that bucket; populated only through
        #: :meth:`observe_with_exemplar`, cleared by :meth:`reset_values`.
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float) -> None:
        """Record one sample (no-op while disabled)."""
        if not self._registry.enabled:
            return
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_with_exemplar(self, value: float, trace_id: str | None) -> None:
        """Record one sample, retaining ``trace_id`` as the bucket's
        exemplar when ``value`` is the largest seen in its bucket.

        The exemplar links an aggregate latency bucket to one concrete
        trace in the timeline plane (:mod:`repro.obs.events`) — the
        slowest observation per bucket, so an SLO breach points at a
        trace worth opening. ``trace_id=None`` degrades to
        :meth:`observe`.
        """
        if not self._registry.enabled:
            return
        i = bisect_left(self.bounds, value)
        self.bucket_counts[i] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if trace_id is not None:
            current = self.exemplars.get(i)
            if current is None or value > current[0]:
                self.exemplars[i] = (value, trace_id)

    @property
    def mean(self) -> float:
        """Exact mean of all observations (NaN when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (NaN when empty).

        Walks the cumulative bucket counts to the bucket holding the
        ``q``-th sample and interpolates linearly inside it, clamping
        the bucket edges to the exact observed ``min``/``max`` (so the
        first/last buckets and single-sample histograms stay tight).
        Resolution is bounded by the bucket layout — pick latency-scaled
        buckets for latency quantiles.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if n and cumulative >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                return lo + (hi - lo) * (target - (cumulative - n)) / n
        return self.max

    def reset_values(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.exemplars.clear()

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "type": "histogram",
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            out.update(mean=self.mean, min=self.min, max=self.max)
        if self.exemplars:
            out["exemplars"] = {
                str(i): {"value": v, "trace_id": t}
                for i, (v, t) in sorted(self.exemplars.items())
            }
        return out


class MetricsRegistry:
    """Name-addressed instrument store with one process-wide instance.

    Instruments are created once and never removed; :meth:`reset` zeroes
    their values in place, so references cached at import time by hot
    modules stay live across resets.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        # Values are Counter/Gauge/Histogram or the windowed variants of
        # repro.obs.live, which register through the same factory.
        self._metrics: dict[str, Any] = {}

    # --- instrument factories (get-or-create) -------------------------------

    def _get_or_create(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {kind.__name__}"
                    )
                return existing
            instrument = kind(name, self, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram named ``name``, created on first use.

        ``buckets`` only applies on creation; later lookups return the
        existing instrument regardless.
        """
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bounds=tuple(buckets))

    # --- aggregation ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict copy of every instrument (JSON- and pickle-safe)."""
        with self._lock:
            return {name: m.snapshot() for name, m in self._metrics.items()}

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry.

        Counters and histograms add; gauges take the incoming value.
        Instruments absent locally are created. Histogram bucket layouts
        must match — a mismatch raises rather than mis-binning. Windowed
        instruments (:mod:`repro.obs.live`) are process-local — a
        sliding window is only meaningful against the wall clock that
        drove it — so their snapshot entries are skipped, not merged.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if isinstance(kind, str) and kind.startswith("windowed_"):
                continue
            if kind == "counter":
                self.counter(name).value += float(data["value"])
            elif kind == "gauge":
                self.gauge(name).value = float(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name, buckets=tuple(data["bounds"]))
                if list(hist.bounds) != list(data["bounds"]):
                    raise ValidationError(
                        f"histogram {name!r} bucket bounds mismatch on merge"
                    )
                incoming = data["bucket_counts"]
                for i, n in enumerate(incoming):
                    hist.bucket_counts[i] += int(n)
                hist.count += int(data["count"])
                hist.sum += float(data["sum"])
                if int(data["count"]):
                    hist.min = min(hist.min, float(data["min"]))
                    hist.max = max(hist.max, float(data["max"]))
            else:
                raise ValidationError(f"cannot merge metric {name!r} of type {kind!r}")

    def reset(self) -> None:
        """Zero every instrument in place (registrations survive).

        Dispatches through ``reset_values`` so the windowed instruments
        of :mod:`repro.obs.live` — registered here alongside the
        cumulative ones — clear their rings under the same call.
        """
        with self._lock:
            for m in self._metrics.values():
                m.reset_values()


def metrics_delta(
    end: Mapping[str, Mapping[str, Any]], start: Mapping[str, Mapping[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Per-instrument difference of two snapshots (``end`` minus ``start``).

    Used by worker tasks to report only what *they* recorded, regardless
    of any state inherited from the parent at fork. Counters and
    histogram counts/sums subtract; gauges and histogram min/max keep the
    ``end`` values (a true min/max of the delta window is unrecoverable
    from aggregates — the end values are the safe approximation).
    Instruments with nothing recorded in the window are dropped, as are
    windowed (process-local) instruments — they fall through the type
    dispatch by design.
    """
    delta: dict[str, dict[str, Any]] = {}
    for name, data in end.items():
        before = start.get(name)
        kind = data.get("type")
        if kind == "counter":
            value = data["value"] - (before["value"] if before else 0.0)
            if value:
                delta[name] = {"type": "counter", "value": value}
        elif kind == "gauge":
            if before is None or data["value"] != before["value"]:
                delta[name] = {"type": "gauge", "value": data["value"]}
        elif kind == "histogram":
            base_counts = before["bucket_counts"] if before else [0] * len(data["bucket_counts"])
            counts = [int(n) - int(b) for n, b in zip(data["bucket_counts"], base_counts)]
            count = int(data["count"]) - (int(before["count"]) if before else 0)
            if count:
                delta[name] = {
                    "type": "histogram",
                    "bounds": list(data["bounds"]),
                    "bucket_counts": counts,
                    "count": count,
                    "sum": data["sum"] - (float(before["sum"]) if before else 0.0),
                    "min": data.get("min", float("inf")),
                    "max": data.get("max", float("-inf")),
                }
    return delta


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY
