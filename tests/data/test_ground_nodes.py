"""Tests for the Table I ground-node data."""

import pytest

from repro.channels.geometry import great_circle_distance_km
from repro.data.ground_nodes import (
    EPB_NODES,
    ORNL_NODES,
    TTU_NODES,
    GroundNode,
    LocalNetwork,
    all_ground_nodes,
    qntn_local_networks,
)
from repro.errors import ValidationError


class TestTableICounts:
    def test_paper_node_counts(self):
        """Section II-A: TTU has 5 nodes, ORNL 11, EPB 15."""
        assert len(TTU_NODES) == 5
        assert len(ORNL_NODES) == 11
        assert len(EPB_NODES) == 15

    def test_total_31_nodes(self):
        assert len(all_ground_nodes()) == 31

    def test_unique_names(self):
        names = [n.name for n in all_ground_nodes()]
        assert len(set(names)) == len(names)

    def test_network_tags(self):
        assert all(n.network == "ttu" for n in TTU_NODES)
        assert all(n.network == "epb" for n in EPB_NODES)
        assert all(n.network == "ornl" for n in ORNL_NODES)


class TestCoordinatesPlausible:
    def test_all_in_tennessee(self):
        for node in all_ground_nodes():
            assert 34.5 < node.lat_deg < 37.0
            assert -86.5 < node.lon_deg < -83.5

    def test_first_ttu_node_matches_table(self):
        node = TTU_NODES[0]
        assert node.lat_deg == 36.1757
        assert node.lon_deg == -85.5066

    def test_lans_are_city_scale(self):
        """Nodes within a LAN sit within a few km of each other."""
        for lan in qntn_local_networks():
            ref = lan.nodes[0]
            for node in lan.nodes[1:]:
                d = great_circle_distance_km(
                    ref.lat_rad, ref.lon_rad, node.lat_rad, node.lon_rad
                )
                assert d < 5.0

    def test_cities_are_regionally_separated(self):
        """LAN centroids are 100+ km apart — the paper's core challenge."""
        import math

        lans = qntn_local_networks()
        for i, a in enumerate(lans):
            for b in lans[i + 1 :]:
                (la1, lo1), (la2, lo2) = a.centroid_deg, b.centroid_deg
                d = great_circle_distance_km(
                    math.radians(la1), math.radians(lo1),
                    math.radians(la2), math.radians(lo2),
                )
                assert d > 100.0


class TestGroundNode:
    def test_radian_properties(self):
        import math

        node = GroundNode("x", 36.0, -85.0)
        assert node.lat_rad == pytest.approx(math.radians(36.0))
        assert node.lon_rad == pytest.approx(math.radians(-85.0))

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValidationError):
            GroundNode("x", 95.0, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValidationError):
            GroundNode("x", 0.0, 190.0)


class TestLocalNetwork:
    def test_len_and_names(self):
        lan = LocalNetwork("ttu", TTU_NODES)
        assert len(lan) == 5
        assert lan.node_names[0] == "ttu-0"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            LocalNetwork("empty", ())

    def test_centroid_inside_bounding_box(self):
        lan = LocalNetwork("epb", EPB_NODES)
        lat, lon = lan.centroid_deg
        assert min(n.lat_deg for n in EPB_NODES) <= lat <= max(n.lat_deg for n in EPB_NODES)
        assert min(n.lon_deg for n in EPB_NODES) <= lon <= max(n.lon_deg for n in EPB_NODES)
