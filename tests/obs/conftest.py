"""Fixtures for the observability tests.

The registry and profile are process-wide singletons; every test that
records through them runs inside :func:`telemetry` so the enabled flag
and all recorded state are restored no matter how the test exits.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture
def telemetry():
    """Enable recording for one test, reset everything afterwards."""
    obs.reset()
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
