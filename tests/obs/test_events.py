"""Unit tests for the causal timeline plane (:mod:`repro.obs.events`).

Covers the recorder lifecycle (ring / rotated-JSONL storage, sampling,
context-stack parenting), the shard merge protocol with monotonic-clock
alignment, the Chrome ``trace_event`` export, the ASCII tree renderer,
and the ``obs.reset`` leak guarantees the CLI relies on between
back-to-back runs in one process.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ValidationError
from repro.obs import events
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import Histogram


@pytest.fixture
def recorder():
    """Ring-mode recorder active for one test, always dropped after."""
    rec = events.start(ring_size=4096)
    try:
        yield rec
    finally:
        events.reset()


def _request_trace(rec, trace_id, *, tenant="tenant-0"):
    """Record one server-shaped trace: root + queue child + serve span."""
    handle = rec.trace_begin(trace_id, "request", attrs={"tenant": tenant})
    handle.child_complete("queue", begin_us=handle.t0_us)
    with handle.scope():
        with obs.span("serve"):
            with obs.span("admission"):
                pass
    handle.end(attrs={"served": True})
    return handle


# --- recorder basics -----------------------------------------------------------


def test_trace_records_have_context(recorder):
    _request_trace(recorder, "req-0")
    records = recorder.records()
    assert [r["name"] for r in records] == ["queue", "admission", "serve", "request"]
    assert all(r["trace"] == "req-0" for r in records)
    assert all(r["ph"] == "X" for r in records)
    by_name = {r["name"]: r for r in records}
    root = by_name["request"]
    assert "parent" not in root
    assert by_name["queue"]["parent"] == root["span"]
    assert by_name["serve"]["parent"] == root["span"]
    assert by_name["admission"]["parent"] == by_name["serve"]["span"]
    assert root["attrs"] == {"tenant": "tenant-0", "served": True}
    # Span ids are a dense per-trace sequence.
    assert sorted(r["span"] for r in records) == [1, 2, 3, 4]


def test_timestamps_are_causal(recorder):
    _request_trace(recorder, "req-0")
    by_name = {r["name"]: r for r in recorder.records()}
    root = by_name["request"]
    for r in by_name.values():
        assert r["dur"] >= 0
        assert r["ts"] >= root["ts"]
        assert r["ts"] + r["dur"] <= root["ts"] + root["dur"]
    serve = by_name["serve"]
    inner = by_name["admission"]
    assert serve["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= serve["ts"] + serve["dur"]


def test_spans_without_context_are_process_scope(recorder):
    with obs.span("advance"):
        pass
    (record,) = recorder.records()
    assert "trace" not in record and "parent" not in record
    assert record["shard"] == 0


def test_cache_fill_spans_stay_process_scope(recorder):
    """PROCESS_SCOPE_SPANS members never anchor to the enclosing trace —
    the property that makes trace tuples worker-count invariant."""
    handle = recorder.trace_begin("req-0", "request")
    with handle.scope():
        with obs.span("route"):
            pass
    handle.end()
    by_name = {r["name"]: r for r in recorder.records()}
    assert "trace" not in by_name["route"]
    assert by_name["request"]["trace"] == "req-0"


def test_trace_ids_restart_per_trace(recorder):
    _request_trace(recorder, "req-0")
    _request_trace(recorder, "req-1")
    for trace_id in ("req-0", "req-1"):
        spans = [r["span"] for r in recorder.records() if r["trace"] == trace_id]
        assert sorted(spans) == [1, 2, 3, 4]


def test_summary_counts_and_slowest(recorder):
    for i in range(3):
        _request_trace(recorder, f"req-{i}")
    summary = recorder.summary()
    assert summary["events"] == 12
    assert summary["traces"] == 3
    assert summary["open_traces"] == 0
    assert summary["spans"]["serve"] == 3
    slowest = summary["slowest"]
    assert len(slowest) == 3
    assert [e["dur_us"] for e in slowest] == sorted(
        (e["dur_us"] for e in slowest), reverse=True
    )
    entry = slowest[0]
    assert entry["trace"].startswith("req-")
    assert {s["path"] for s in entry["spans"]} == {"queue", "serve", "serve/admission"}
    assert all(s["off_us"] >= 0 for s in entry["spans"])


def test_slowest_is_bounded():
    rec = events.start(ring_size=4096, n_slowest=2)
    try:
        for i in range(5):
            _request_trace(rec, f"req-{i}")
        assert len(rec.summary()["slowest"]) == 2
    finally:
        events.reset()


# --- sampling ------------------------------------------------------------------


def test_zero_sample_rate_suppresses_subtree():
    rec = events.start(ring_size=4096, sample_rate=0.0)
    try:
        handle = _request_trace(rec, "req-0")
        assert not handle.sampled
        assert rec.records() == []
        assert rec.n_events == 0
    finally:
        events.reset()


def test_sampling_is_deterministic_per_trace():
    decisions = []
    for _ in range(2):
        rec = events.start(ring_size=4096, sample_rate=0.5, seed=7)
        try:
            decisions.append([rec.sampled(f"req-{i}") for i in range(64)])
        finally:
            events.reset()
    assert decisions[0] == decisions[1]
    assert any(decisions[0]) and not all(decisions[0])


def test_invalid_config_rejected():
    with pytest.raises(ValidationError):
        events.EventConfig(sample_rate=1.5)
    with pytest.raises(ValidationError):
        events.EventConfig(ring_size=0)
    with pytest.raises(ValidationError):
        events.EventConfig(max_records_per_file=0)


# --- file output and rotation --------------------------------------------------


def test_jsonl_rotation_and_read_events(tmp_path):
    path = tmp_path / "events.jsonl"
    rec = events.start(path, max_records_per_file=5)
    try:
        for i in range(4):
            _request_trace(rec, f"req-{i}")
        rec.flush()
        assert len(rec.paths) == 4
        assert rec.paths[0] == path
        assert rec.paths[1].name == "events.jsonl.1"
    finally:
        events.stop()
    records = list(events.read_events(path))
    assert len(records) == 16
    assert {r["trace"] for r in records} == {f"req-{i}" for i in range(4)}


def test_ring_mode_is_bounded():
    rec = events.start(ring_size=8)
    try:
        for i in range(10):
            _request_trace(rec, f"req-{i}")
        records = rec.records()
        assert len(records) == 8
        assert rec.n_events == 40  # analytics keep counting past the ring
    finally:
        events.reset()


# --- lifecycle: start/stop/reset/detach ---------------------------------------


def test_stop_returns_summary_and_deactivates(tmp_path):
    rec = events.start(tmp_path / "events.jsonl")
    _request_trace(rec, "req-0")
    summary = events.stop()
    assert summary["traces"] == 1
    assert events.active() is None
    assert events.stop() is None


def test_obs_reset_drops_recorder_and_exemplars():
    """Satellite regression: back-to-back CLI runs in one process must
    not leak events or exemplars from the previous run."""
    events.start(ring_size=64)
    hist = obs.registry().histogram("test_events_latency", buckets=(0.1, 1.0))
    obs.enable()
    hist.observe_with_exemplar(0.05, "req-0")
    assert events.active() is not None
    assert hist.exemplars
    obs.reset()
    try:
        assert events.active() is None
        assert not hist.exemplars
        assert hist.count == 0
    finally:
        obs.disable()
        obs.reset()


def test_detach_attach_survives_obs_reset():
    rec = events.start(ring_size=64)
    _request_trace(rec, "req-0")
    kept = events.detach()
    obs.reset()  # would close/drop an attached recorder
    events.attach(kept)
    try:
        assert events.active() is rec
        assert rec.n_events == 4
    finally:
        events.reset()


# --- shard merge protocol ------------------------------------------------------


def test_shard_config_none_when_off():
    assert events.active() is None
    assert events.shard_config(0) is None


def test_shard_roundtrip_ring(recorder):
    cfg = events.shard_config(12)
    assert cfg["shard"] == 13
    assert cfg["path"] is None

    # Worker side, simulated in-process with an explicit recorder.
    parent = events.detach()
    shard_rec = events.start_shard(cfg)
    _request_trace(shard_rec, "req-12")
    payload = events.finish_shard()
    events.attach(parent)

    assert payload["shard"] == 13
    assert len(payload["records"]) == 4
    events.absorb_shard(payload)
    merged = [r for r in recorder.records() if r.get("trace") == "req-12"]
    assert len(merged) == 4
    assert all(r["shard"] == 13 for r in merged)
    assert recorder.n_traces == 1


def test_shard_file_payload_absorbed_and_unlinked(tmp_path):
    path = tmp_path / "events.jsonl"
    rec = events.start(path)
    try:
        cfg = events.shard_config(0)
        shard_path = tmp_path / "events.jsonl.shard-000000"
        assert cfg["path"] == str(shard_path)

        parent = events.detach()
        shard_rec = events.start_shard(cfg)
        _request_trace(shard_rec, "req-0")
        payload = events.finish_shard()
        events.attach(parent)

        assert shard_path.exists()
        events.absorb_shard(payload)
        assert not shard_path.exists()  # consumed into the parent stream
        rec.flush()
    finally:
        events.stop()
    records = list(events.read_events(path))
    assert {r["trace"] for r in records} == {"req-0"}
    assert all(r["shard"] == 1 for r in records)


def test_absorb_aligns_shard_clock(recorder):
    """A shard whose monotonic origin differs wildly from the parent's
    lands on the parent timeline via one constant offset — intra-trace
    intervals survive exactly."""
    shard_rec = events.shard_recorder(events.shard_config(4))
    # Forge a worker clock: monotonic origin 5 s behind the parent's,
    # wall origin identical (same host, different process start).
    shard_rec.mono_origin_us = recorder.mono_origin_us - 5_000_000
    shard_rec.wall_origin_unix_s = recorder.wall_origin_unix_s
    shard_rec.complete(
        "queue", trace_id="req-4", parent_id=2, begin_us=1_000, end_us=1_250
    )
    shard_rec.complete("request", trace_id="req-4", begin_us=1_000, end_us=9_000)
    payload = events.shard_payload(shard_rec)

    events.absorb_shard(payload)
    merged = {r["name"]: r for r in recorder.records()}
    offset = 5_000_000
    assert merged["queue"]["ts"] == 1_000 + offset
    assert merged["request"]["ts"] == 1_000 + offset
    assert merged["queue"]["dur"] == 250  # durations are never rescaled
    assert (
        merged["queue"]["ts"] - merged["request"]["ts"] == 0
    )  # intra-trace offsets preserved


def test_absorb_none_payload_is_noop(recorder):
    events.absorb_shard(None)
    assert recorder.n_events == 0


# --- Chrome trace export -------------------------------------------------------


def _chrome(recorder):
    return events.to_chrome_trace(recorder.records())


def test_chrome_trace_has_matched_begin_end(recorder):
    for i in range(3):
        _request_trace(recorder, f"req-{i}")
    doc = _chrome(recorder)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["schema"] == events.EVENT_SCHEMA_VERSION
    span_events = [e for e in doc["traceEvents"] if e["cat"] == "span"]
    assert all(
        {"ph", "name", "ts", "pid", "tid", "args"} <= set(e) for e in span_events
    )
    # Every B has a matching E per (pid, tid, name), properly nested.
    depth: dict[tuple[int, int], list[str]] = {}
    for e in span_events:
        key = (e["pid"], e["tid"])
        stack = depth.setdefault(key, [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            assert e["ph"] == "E"
            assert stack and stack[-1] == e["name"], "unbalanced begin/end"
            stack.pop()
    assert all(not stack for stack in depth.values())


def test_chrome_trace_timestamps_monotone_per_track(recorder):
    for i in range(3):
        _request_trace(recorder, f"req-{i}")
    doc = _chrome(recorder)
    last: dict[tuple[int, int], int] = {}
    for e in doc["traceEvents"]:
        key = (e["pid"], e["tid"])
        assert e["ts"] >= last.get(key, 0)
        last[key] = e["ts"]


def test_chrome_trace_flow_events(recorder):
    _request_trace(recorder, "req-0")
    # A parent-side dispatch span plus one worker-shard record makes the
    # cross-process flow arrow.
    recorder.complete(
        "dispatch", begin_us=0, end_us=10, attrs={"shard": 3}
    )
    shard_rec = events.shard_recorder(events.shard_config(2))
    shard_rec.mono_origin_us = recorder.mono_origin_us
    shard_rec.wall_origin_unix_s = recorder.wall_origin_unix_s
    shard_rec.complete("request", trace_id="req-2", begin_us=100, end_us=200)
    events.absorb_shard(events.shard_payload(shard_rec))

    doc = _chrome(recorder)
    flows = [e for e in doc["traceEvents"] if e["cat"] == "flow"]
    by_name = {}
    for e in flows:
        by_name.setdefault(e["name"], []).append(e["ph"])
    assert sorted(by_name["submit->serve"]) == ["f", "s"]
    assert sorted(by_name["dispatch->shard"]) == ["f", "s"]
    finish = next(e for e in flows if e["ph"] == "f" and e["name"] == "dispatch->shard")
    assert finish["pid"] == 3 and finish["bp"] == "e"


def test_chrome_trace_json_serializable(recorder):
    _request_trace(recorder, "req-0")
    doc = _chrome(recorder)
    assert json.loads(json.dumps(doc)) == doc


# --- ASCII tree renderer -------------------------------------------------------


def test_render_tree_nests_and_notes_process_scope(recorder):
    _request_trace(recorder, "req-0")
    with obs.span("advance"):
        pass
    text = events.render_tree(recorder.records())
    lines = text.splitlines()
    assert lines[0].startswith("req-0 ")
    assert "(shard 0)" in lines[0]
    assert any("queue" in line and "├─" in line or "└─" in line for line in lines)
    serve_i = next(i for i, l in enumerate(lines) if "─ serve " in l)
    assert "serve/admission" in lines[serve_i + 1]
    assert lines[-1] == "(1 process-scope events not shown per trace)"


def test_render_tree_limit_keeps_slowest(recorder):
    for i in range(4):
        _request_trace(recorder, f"req-{i}")
    durs = {
        r["trace"]: r["dur"]
        for r in recorder.records()
        if r["name"] == "request"
    }
    slowest = max(durs, key=lambda t: (durs[t], t))
    text = events.render_tree(recorder.records(), limit=1)
    assert slowest in text
    assert sum(1 for line in text.splitlines() if line.startswith("req-")) == 1


def test_render_tree_empty():
    assert events.render_tree([]) == "(no trace events)"


# --- exemplar exposition -------------------------------------------------------


def test_prometheus_bucket_lines_carry_exemplars():
    obs.reset()
    obs.enable()
    try:
        hist = obs.registry().histogram(
            "test_events_exemplar_latency", buckets=(0.1, 1.0)
        )
        assert isinstance(hist, Histogram)
        hist.observe_with_exemplar(0.05, "req-3")
        hist.observe_with_exemplar(0.5, "req-7")
        text = to_prometheus_text()
        lines = [
            l
            for l in text.splitlines()
            if l.startswith("repro_test_events_exemplar_latency_bucket")
        ]
        assert any('# {trace_id="req-3"} 0.05' in l for l in lines)
        assert any('# {trace_id="req-7"} 0.5' in l for l in lines)
    finally:
        obs.disable()
        obs.reset()
