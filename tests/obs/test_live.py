"""Windowed (live) instruments: determinism, expiry, exact quantiles.

Every test drives the module clock of :mod:`repro.obs.live` with a fake,
so rates, windows, and quantiles are bit-reproducible — the contract
that makes the SLO burn-rate tests and the live-vs-offline acceptance
check meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import live, metrics


class FakeClock:
    """A monotonic clock the test advances explicitly."""

    def __init__(self, start: float = 1000.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock(telemetry):
    """Install a fake live-metrics clock for one (telemetry-on) test."""
    fake = FakeClock()
    previous = live.set_clock(fake)
    try:
        yield fake
    finally:
        live.set_clock(previous)


class TestWindowedCounter:
    def test_rate_and_total_deterministic(self, clock):
        c = live.windowed_counter("t.live.counter", window_s=10.0, bucket_s=1.0)
        for _ in range(20):
            c.inc()
            clock.advance(0.5)
        # 10 s elapsed; all 20 events inside the 10 s window.
        assert c.total() == 20.0
        assert c.rate() == pytest.approx(2.0)
        assert c.cumulative == 20.0

    def test_old_events_expire(self, clock):
        c = live.windowed_counter("t.live.expire", window_s=10.0, bucket_s=1.0)
        c.inc(5)
        clock.advance(11.0)
        assert c.total() == 0.0
        assert c.rate() == 0.0
        assert c.cumulative == 5.0  # cumulative never expires

    def test_sub_window_query(self, clock):
        c = live.windowed_counter("t.live.sub", window_s=60.0, bucket_s=1.0)
        c.inc(30)  # t = 1000
        clock.advance(30.0)
        c.inc(10)  # t = 1030
        clock.advance(2.0)  # t = 1032
        assert c.total() == 40.0
        # Only the recent burst is inside the short window.
        assert c.total(window_s=5.0) == 10.0
        assert c.rate(window_s=5.0) == pytest.approx(2.0)

    def test_sub_window_clamped_to_ring(self, clock):
        c = live.windowed_counter("t.live.clamp", window_s=10.0, bucket_s=1.0)
        c.inc(4)
        assert c.total(window_s=999.0) == 4.0
        assert c.rate(window_s=999.0) == pytest.approx(0.4)

    def test_disabled_records_nothing(self, clock, telemetry):
        c = live.windowed_counter("t.live.off", window_s=10.0)
        telemetry.disable()
        c.inc(7)
        telemetry.enable()
        assert c.total() == 0.0
        assert c.cumulative == 0.0

    def test_ring_reuse_after_full_wrap(self, clock):
        c = live.windowed_counter("t.live.wrap", window_s=4.0, bucket_s=1.0)
        for i in range(12):
            c.inc(1)
            clock.advance(1.0)
        # Only the last 4 one-per-second events are inside the window.
        assert c.total() == 4.0
        assert c.cumulative == 12.0


class TestWindowedGauge:
    def test_last_min_max(self, clock):
        g = live.windowed_gauge("t.live.gauge", window_s=10.0, bucket_s=1.0)
        for v in (3.0, 9.0, 1.0, 5.0):
            g.set(v)
            clock.advance(1.0)
        assert g.last() == 5.0
        assert g.window_min() == 1.0
        assert g.window_max() == 9.0

    def test_window_extrema_expire_last_does_not(self, clock):
        g = live.windowed_gauge("t.live.gexp", window_s=5.0, bucket_s=1.0)
        g.set(100.0)
        clock.advance(3.0)
        g.set(2.0)
        clock.advance(3.0)  # the 100.0 bucket is now outside the window
        assert g.window_max() == 2.0
        assert g.last() == 2.0

    def test_empty_gauge_is_nan(self, clock):
        g = live.windowed_gauge("t.live.gempty", window_s=5.0)
        assert g.last() != g.last()
        assert g.window_min() != g.window_min()


class TestWindowedHistogram:
    def test_exact_quantiles_match_numpy(self, clock):
        h = live.windowed_histogram("t.live.hist", window_s=30.0, bucket_s=1.0)
        rng = np.random.default_rng(42)
        samples = rng.exponential(scale=0.01, size=500)
        for s in samples:
            h.observe(float(s))
            clock.advance(30.0 / len(samples))  # all stay inside the window
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(
                float(np.quantile(samples, q)), abs=1e-12
            )
        assert h.mean() == pytest.approx(float(samples.mean()), abs=1e-12)
        assert h.count() == 500

    def test_windowed_quantile_drops_expired_samples(self, clock):
        h = live.windowed_histogram("t.live.hexp", window_s=10.0, bucket_s=1.0)
        h.observe(1000.0)  # ancient outlier
        clock.advance(11.0)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.quantile(1.0) == 3.0
        assert h.count() == 3
        assert h.cumulative_count == 4

    def test_sub_window_quantile(self, clock):
        h = live.windowed_histogram("t.live.hsub", window_s=60.0, bucket_s=1.0)
        h.observe(50.0)
        clock.advance(30.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        full = sorted([50.0, 1.0, 2.0, 3.0, 4.0])
        assert h.quantile(0.5) == float(np.quantile(full, 0.5))
        assert h.quantile(0.5, window_s=5.0) == 2.5

    def test_fraction_above(self, clock):
        h = live.windowed_histogram("t.live.hfrac", window_s=10.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.fraction_above(2.0) == 0.5
        assert h.fraction_above(100.0) == 0.0
        # Empty window: no traffic is no burn, not NaN.
        clock.advance(11.0)
        assert h.fraction_above(0.0) == 0.0

    def test_quantile_validates_q(self, clock):
        h = live.windowed_histogram("t.live.hval", window_s=10.0)
        with pytest.raises(ValidationError):
            h.quantile(1.5)


class TestClockAndRegistry:
    def test_set_clock_returns_previous(self):
        fake = FakeClock(5.0)
        previous = live.set_clock(fake)
        try:
            assert live.now() == 5.0
            fake.advance(1.0)
            assert live.now() == 6.0
        finally:
            assert live.set_clock(previous) is fake

    def test_ring_validation(self):
        reg = metrics.MetricsRegistry()
        with pytest.raises(ValidationError):
            live.WindowedCounter("bad", reg, window_s=0.0)
        with pytest.raises(ValidationError):
            live.WindowedCounter("bad", reg, window_s=1.0, bucket_s=2.0)

    def test_get_or_create_is_idempotent(self, clock):
        a = live.windowed_counter("t.live.same", window_s=10.0)
        b = live.windowed_counter("t.live.same", window_s=10.0)
        assert a is b

    def test_obs_reset_clears_windowed_values(self, clock, telemetry):
        c = live.windowed_counter("t.live.reset", window_s=10.0)
        c.inc(3)
        telemetry.reset()
        telemetry.enable()
        assert c.total() == 0.0
        assert c.cumulative == 0.0

    def test_snapshot_shapes(self, clock):
        c = live.windowed_counter("t.live.snapc", window_s=10.0)
        g = live.windowed_gauge("t.live.snapg", window_s=10.0)
        h = live.windowed_histogram("t.live.snaph", window_s=10.0)
        c.inc(2)
        g.set(4.0)
        h.observe(0.5)
        snap = metrics.registry().snapshot()
        assert snap["t.live.snapc"]["type"] == "windowed_counter"
        assert snap["t.live.snapc"]["total"] == 2.0
        assert snap["t.live.snapg"]["type"] == "windowed_gauge"
        assert snap["t.live.snapg"]["last"] == 4.0
        assert snap["t.live.snaph"]["type"] == "windowed_histogram"
        assert snap["t.live.snaph"]["p50"] == 0.5

    def test_delta_and_merge_skip_windowed(self, clock):
        c = live.windowed_counter("t.live.skip", window_s=10.0)
        plain = metrics.registry().counter("t.live.plainc")
        c.inc(5)
        plain.inc(2)
        before = metrics.registry().snapshot()
        plain.inc(1)
        c.inc(1)
        delta = metrics.metrics_delta(metrics.registry().snapshot(), before)
        assert "t.live.skip" not in delta
        assert delta["t.live.plainc"]["value"] == 1.0
        # Merging a snapshot that contains windowed entries must not
        # touch the local windowed instrument.
        metrics.registry().merge(before)
        assert c.total() == 6.0


class TestLiveVsOfflineEquivalence:
    """The acceptance contract: a window covering the whole run yields
    the exact offline aggregates."""

    def test_replayed_request_stream(self, clock):
        h = live.windowed_histogram("t.live.accept", window_s=120.0, bucket_s=1.0)
        c = live.windowed_counter("t.live.acceptc", window_s=120.0, bucket_s=1.0)
        rng = np.random.default_rng(7)
        latencies = []
        # A bursty 100 s "run": irregular arrival gaps, lognormal service.
        for gap in rng.exponential(0.1, size=400):
            clock.advance(float(gap))
            value = float(rng.lognormal(mean=-6.0, sigma=1.0))
            h.observe(value)
            c.inc()
            latencies.append(value)
        offline = np.asarray(latencies)
        assert h.count() == offline.size
        assert c.total() == offline.size
        for q in (0.5, 0.9, 0.99):
            assert h.quantile(q) == pytest.approx(
                float(np.quantile(offline, q)), abs=1e-12
            )
        assert h.mean() == pytest.approx(float(offline.mean()), abs=1e-12)


class TestForcedLivePlane:
    """`live.force` — the standalone switch behind `repro serve --http-port`."""

    def test_records_while_registry_disabled(self, telemetry):
        telemetry.disable()
        previous = live.force(True)
        try:
            c = live.windowed_counter("t.live.forced", window_s=10.0)
            h = live.windowed_histogram("t.live.forcedh", window_s=10.0)
            g = live.windowed_gauge("t.live.forcedg", window_s=10.0)
            c.inc(3)
            h.observe(0.5)
            g.set(2.0)
            assert c.total() == 3.0
            assert h.count() == 1
            assert g.last() == 2.0
            # The plain cumulative instruments stay off.
            plain = metrics.registry().counter("t.live.forced.plain")
            plain.inc()
            assert plain.value == 0.0
        finally:
            live.force(previous)

    def test_force_returns_previous_and_restores(self, telemetry):
        assert live.force(True) is False
        assert live.force(False) is True
        assert not live.forced()

    def test_reset_clears_force(self, telemetry):
        live.force(True)
        telemetry.reset()
        assert not live.forced()

    def test_gauge_counts_writes(self, clock):
        g = live.windowed_gauge("t.live.gwrites", window_s=10.0)
        for v in (1.0, 2.0, 3.0):
            g.set(v)
        assert g.cumulative_n == 3
        assert g.snapshot()["cumulative_n"] == 3
        g.reset_values()
        assert g.cumulative_n == 0
