"""SLO tracking: spec validation, burn-rate math, alert transitions.

All tests drive the live-metrics clock with a fake and feed the
windowed instruments directly, so every burn rate below is an exact
hand-computable number.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.errors import ValidationError
from repro.obs import live
from repro.obs.slo import (
    MAX_SNAPSHOTS,
    AlertState,
    SLOSpec,
    SLOTracker,
    load_slo_spec,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock(telemetry):
    fake = FakeClock()
    previous = live.set_clock(fake)
    try:
        yield fake
    finally:
        live.set_clock(previous)


def make_tracker(spec: SLOSpec, tag: str) -> tuple[SLOTracker, dict]:
    """A tracker over fresh windowed instruments (unique per test)."""
    instruments = {
        "submitted": live.windowed_counter(f"t.slo.{tag}.submitted", 120.0),
        "served": live.windowed_counter(f"t.slo.{tag}.served", 120.0),
        "denied": live.windowed_counter(f"t.slo.{tag}.denied", 120.0),
        "shed": live.windowed_counter(f"t.slo.{tag}.shed", 120.0),
        "latency": live.windowed_histogram(f"t.slo.{tag}.latency", 120.0),
    }
    return SLOTracker(spec, **instruments), instruments


class TestSLOSpec:
    def test_defaults_valid(self):
        spec = SLOSpec()
        assert spec.served_fraction_target == 0.95
        assert spec.short_window_s < spec.long_window_s

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"served_fraction_target": 0.0},
            {"served_fraction_target": 1.0},
            {"p99_latency_bound_s": 0.0},
            {"queue_full_budget": 1.5},
            {"short_window_s": 60.0, "long_window_s": 5.0},
            {"warning_burn": 10.0, "critical_burn": 2.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            SLOSpec(**kwargs)

    def test_round_trips_through_dict(self):
        spec = SLOSpec(p99_latency_bound_s=0.05, queue_full_budget=0.1)
        assert SLOSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            SLOSpec.from_dict({"nope": 1})

    def test_load_slo_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"served_fraction_target": 0.8}))
        assert load_slo_spec(path).served_fraction_target == 0.8
        with pytest.raises(ValidationError):
            load_slo_spec(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ValidationError):
            load_slo_spec(bad)


class TestBurnRates:
    def test_availability_burn_exact(self, clock):
        # Budget = 1 - 0.95 = 0.05; serve 90 of 100 -> error rate 0.1,
        # burn = 0.1 / 0.05 = 2.0 on both windows.
        tracker, inst = make_tracker(SLOSpec(served_fraction_target=0.95), "avail")
        inst["served"].inc(90)
        inst["denied"].inc(10)
        statuses = tracker.evaluate()
        availability = statuses["availability"]
        assert availability.burn_short == pytest.approx(2.0)
        assert availability.burn_long == pytest.approx(2.0)
        # burn == warning threshold is NOT a breach (strictly greater).
        assert availability.state is AlertState.OK

    def test_objectives_follow_spec(self, clock):
        tracker, _ = make_tracker(SLOSpec(), "only-avail")
        assert tracker.objectives == ("availability",)
        tracker2, _ = make_tracker(
            SLOSpec(p99_latency_bound_s=0.05, queue_full_budget=0.1), "all"
        )
        assert tracker2.objectives == ("availability", "latency", "saturation")

    def test_idle_service_burns_nothing(self, clock):
        tracker, _ = make_tracker(
            SLOSpec(p99_latency_bound_s=0.01, queue_full_budget=0.1), "idle"
        )
        for status in tracker.evaluate().values():
            assert status.burn_short == 0.0
            assert status.state is AlertState.OK

    def test_latency_burn(self, clock):
        # 10 % of samples above the bound against a 1 % budget -> burn 10.
        tracker, inst = make_tracker(SLOSpec(p99_latency_bound_s=0.1), "lat")
        for _ in range(90):
            inst["latency"].observe(0.01)
        for _ in range(10):
            inst["latency"].observe(0.5)
        status = tracker.evaluate()["latency"]
        assert status.burn_long == pytest.approx(10.0)
        assert status.state is AlertState.WARNING  # 10 is not > critical 10

    def test_saturation_burn(self, clock):
        tracker, inst = make_tracker(SLOSpec(queue_full_budget=0.1), "sat")
        inst["submitted"].inc(100)
        inst["shed"].inc(50)
        status = tracker.evaluate()["saturation"]
        assert status.burn_long == pytest.approx(5.0)
        assert status.state is AlertState.WARNING

    def test_short_window_filters_recovered_incident(self, clock):
        # An outage entirely older than the short window: the long
        # window still burns, but min(short, long) stays calm.
        spec = SLOSpec(short_window_s=5.0, long_window_s=60.0)
        tracker, inst = make_tracker(spec, "recover")
        inst["denied"].inc(100)  # total outage at t=1000
        clock.advance(30.0)
        inst["served"].inc(100)  # healthy burst at t=1030
        clock.advance(2.0)
        status = tracker.evaluate()["availability"]
        assert status.burn_long > spec.warning_burn  # long window saw it
        assert status.burn_short == 0.0
        assert status.state is AlertState.OK


class TestTransitions:
    def test_escalation_and_recovery_recorded(self, clock, caplog):
        spec = SLOSpec(short_window_s=5.0, long_window_s=60.0)
        tracker, inst = make_tracker(spec, "trans")
        with caplog.at_level(logging.INFO, logger="repro.obs.slo"):
            inst["denied"].inc(100)
            assert tracker.evaluate()["availability"].state is AlertState.CRITICAL
            clock.advance(61.0)  # incident ages out of both windows
            inst["served"].inc(10)
            assert tracker.evaluate()["availability"].state is AlertState.OK
        kinds = [(e["from"], e["to"]) for e in tracker.transitions]
        assert kinds == [("ok", "critical"), ("critical", "ok")]
        # Structured JSON log line per transition, level mapped to severity.
        payloads = [json.loads(r.message) for r in caplog.records]
        assert [p["event"] for p in payloads] == ["slo_transition"] * 2
        levels = [r.levelno for r in caplog.records]
        assert levels == [logging.ERROR, logging.INFO]

    def test_state_gauges_exported(self, clock):
        tracker, inst = make_tracker(SLOSpec(), "gauges")
        inst["denied"].inc(100)
        tracker.evaluate()
        assert obs.gauge("slo.availability.state").value == AlertState.CRITICAL.severity
        assert obs.gauge("slo.availability.burn_rate").value == pytest.approx(20.0)

    def test_no_transition_when_state_holds(self, clock):
        tracker, inst = make_tracker(SLOSpec(), "steady")
        inst["served"].inc(100)
        tracker.evaluate()
        tracker.evaluate()
        assert tracker.transitions == []


class TestSnapshotsAndSummary:
    def test_snapshot_points(self, clock):
        tracker, inst = make_tracker(SLOSpec(), "snap")
        inst["served"].inc(60)
        inst["latency"].observe(0.02)
        point = tracker.snapshot()
        assert point["t"] == clock.t
        assert point["served_rate_per_s"] == pytest.approx(1.0)
        assert point["latency_p99_s"] == pytest.approx(0.02)
        assert point["objectives"]["availability"]["state"] == "ok"
        assert tracker.snapshots == [point]

    def test_snapshot_p99_nan_becomes_null(self, clock):
        tracker, _ = make_tracker(SLOSpec(), "nan")
        point = tracker.snapshot()
        assert point["latency_p99_s"] is None
        json.dumps(point)  # strict-JSON safe

    def test_snapshot_retention_cap(self, clock):
        tracker, _ = make_tracker(SLOSpec(), "cap")
        for _ in range(MAX_SNAPSHOTS + 1):
            tracker.snapshot()
            clock.advance(0.01)
        assert len(tracker.snapshots) <= MAX_SNAPSHOTS

    def test_manifest_summary_shape(self, clock):
        tracker, inst = make_tracker(SLOSpec(), "manifest")
        inst["denied"].inc(100)
        tracker.snapshot()
        summary = tracker.manifest_summary()
        assert summary["spec"]["served_fraction_target"] == 0.95
        assert summary["final_states"] == {"availability": "critical"}
        assert len(summary["transitions"]) == 1
        assert len(summary["snapshots"]) == 1
        json.dumps(summary)

    def test_status_shape(self, clock):
        tracker, _ = make_tracker(SLOSpec(), "status")
        status = tracker.status()
        assert "spec" in status and "objectives" in status
        json.dumps(status)


class TestWiring:
    def test_rejects_short_instruments(self, clock):
        short = live.windowed_counter("t.slo.short", window_s=5.0)
        ok = live.windowed_counter("t.slo.ok120", window_s=120.0)
        hist = live.windowed_histogram("t.slo.okh120", window_s=120.0)
        with pytest.raises(ValidationError):
            SLOTracker(
                SLOSpec(long_window_s=60.0),
                submitted=short,
                served=ok,
                denied=ok,
                shed=ok,
                latency=hist,
            )

    def test_serve_instruments_satisfy_default_spec(self, clock):
        # ServeServer.slo_tracker wires the module-level serve.live.*
        # instruments; their ring must span the default long window or
        # the factory would raise at build time.
        from repro.serve import server as server_mod

        assert server_mod.LIVE_WINDOW_S >= SLOSpec().long_window_s
