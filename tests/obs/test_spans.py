"""Unit tests for tracing spans and the per-phase profile."""

import pytest

from repro import obs
from repro.obs.spans import Profile


class TestSpan:
    def test_disabled_span_records_nothing(self):
        obs.reset()
        with obs.span("ghost"):
            pass
        assert "ghost" not in obs.profile().stats()

    def test_span_records_wall_time(self, telemetry):
        with obs.span("phase"):
            pass
        stats = obs.profile().stats()["phase"]
        assert stats.count == 1
        assert stats.total_s >= 0.0
        assert stats.max_s >= stats.total_s / stats.count

    def test_nesting_builds_slash_paths(self, telemetry):
        with obs.span("sweep"):
            with obs.span("propagate"):
                pass
            with obs.span("serve"):
                pass
        paths = set(obs.profile().stats())
        assert {"sweep", "sweep/propagate", "sweep/serve"} <= paths

    def test_exception_still_records_and_pops(self, telemetry):
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        stats = obs.profile().stats()
        assert stats["outer/doomed"].count == 1
        assert stats["outer"].count == 1
        # The stack unwound fully: a new span is top-level again.
        with obs.span("after"):
            pass
        assert "after" in obs.profile().stats()

    def test_reentry_aggregates_under_one_key(self, telemetry):
        for _ in range(4):
            with obs.span("loop"):
                pass
        assert obs.profile().stats()["loop"].count == 4

    def test_cpu_time_is_opt_in(self, telemetry):
        with obs.span("wall-only"):
            pass
        with obs.span("with-cpu", cpu=True):
            sum(range(10000))
        stats = obs.profile().stats()
        assert stats["wall-only"].total_cpu_s == 0.0
        assert stats["with-cpu"].total_cpu_s >= 0.0


class TestTraced:
    def test_decorator_uses_function_name(self, telemetry):
        @obs.traced()
        def compute():
            return 42

        assert compute() == 42
        assert obs.profile().stats()["compute"].count == 1

    def test_decorator_custom_name_nests(self, telemetry):
        @obs.traced("inner")
        def compute():
            return 1

        with obs.span("outer"):
            compute()
        assert "outer/inner" in obs.profile().stats()


class TestProfile:
    def test_merge_accumulates(self):
        a = Profile()
        b = Profile()
        a.record("p", 1.0)
        b.record("p", 2.0)
        b.record("q", 0.5)
        a.merge(b.as_dict())
        stats = a.stats()
        assert stats["p"].count == 2
        assert stats["p"].total_s == pytest.approx(3.0)
        assert stats["p"].max_s == pytest.approx(2.0)
        assert stats["q"].count == 1

    def test_as_dict_round_trip(self):
        p = Profile()
        p.record("x", 0.25, cpu_s=0.1)
        d = p.as_dict()
        assert d["x"]["count"] == 1
        assert d["x"]["total_cpu_s"] == pytest.approx(0.1)

    def test_reset_clears(self):
        p = Profile()
        p.record("x", 1.0)
        p.reset()
        assert p.stats() == {}
