"""Accounting invariants of the flight recorder against the real pipelines.

The trace is only trustworthy if its books balance: every request is
served or carries exactly one canonical cause, the trace-derived
coverage fraction reproduces ``core.coverage`` bit-for-bit, and a
sharded parallel run merges to the same totals as the serial run.
"""

from __future__ import annotations

import pytest

from repro.core.requests import generate_requests
from repro.core.sweeps import run_constellation_sweep
from repro.obs import trace
from repro.obs.trace import CAUSES, DenialCause


@pytest.fixture(autouse=True)
def _no_active_recorder():
    trace.reset_for_worker()
    yield
    trace.reset_for_worker()


def _assert_books_balance(summary):
    req = summary["requests"]
    assert req["served"] + sum(req["causes"].values()) == req["total"]
    assert set(req["causes"]) == set(CAUSES)
    for pair in req["by_lan_pair"].values():
        cause_total = sum(v for k, v in pair.items() if k in CAUSES)
        assert pair["served"] + cause_total == pair["total"]


SWEEP_KW = dict(step_s=600.0, n_requests=4, n_time_steps=4, seed=7)


class TestTracedConstellationSweep:
    @pytest.fixture(scope="class")
    def traced_sweep(self):
        with trace.recording() as rec:
            sweep = run_constellation_sweep(sizes=[6, 12], **SWEEP_KW)
            summary = rec.summary()
        return sweep, summary

    def test_served_plus_causes_equals_total(self, traced_sweep):
        _, summary = traced_sweep
        _assert_books_balance(summary)
        assert summary["requests"]["total"] == 4 * 4  # requests x steps

    def test_served_pct_matches_sweep_point(self, traced_sweep):
        sweep, summary = traced_sweep
        full = sweep.points[-1]  # trace records the full-size row
        assert summary["requests"]["served_pct"] == pytest.approx(
            full.service.served_percentage, abs=1e-12
        )

    def test_mean_fidelity_matches_sweep_point(self, traced_sweep):
        sweep, summary = traced_sweep
        full = sweep.points[-1]
        if summary["requests"]["mean_fidelity"] is None:
            pytest.skip("no served request in the reduced workload")
        assert summary["requests"]["mean_fidelity"] == pytest.approx(
            full.service.mean_fidelity, abs=1e-12
        )

    def test_coverage_matches_core_coverage_to_1e12(self, traced_sweep):
        sweep, summary = traced_sweep
        full = sweep.points[-1]
        cov = summary["coverage"]
        assert cov["percentage"] == pytest.approx(full.coverage.percentage, abs=1e-12)
        assert cov["covered_s"] == pytest.approx(
            full.coverage.total_minutes * 60.0, abs=1e-9
        )

    def test_every_denial_has_exactly_one_canonical_cause(self):
        with trace.recording() as rec:
            run_constellation_sweep(sizes=[12], **SWEEP_KW)
            records = rec.records()
        requests = [r for r in records if r["kind"] == "request"]
        assert requests, "expected request records"
        for record in requests:
            if record["served"]:
                assert "cause" not in record
            else:
                assert record["cause"] in CAUSES

    def test_sharded_sweep_merges_to_serial_totals(self):
        with trace.recording() as rec:
            run_constellation_sweep(sizes=[12], **SWEEP_KW)
            serial = rec.summary()
        with trace.recording() as rec:
            run_constellation_sweep(sizes=[12], n_workers=2, **SWEEP_KW)
            sharded = rec.summary()
        _assert_books_balance(sharded)
        assert sharded["requests"]["causes"] == serial["requests"]["causes"]
        assert sharded["requests"]["served"] == serial["requests"]["served"]
        assert sharded["requests"]["by_lan_pair"] == serial["requests"]["by_lan_pair"]
        assert sharded["satellites"] == serial["satellites"]


class TestTracedSimulatorSweep:
    """The object-level (Bellman-Ford) serving path, serial vs sharded."""

    def _run(self, ephemeris, requests, n_workers):
        from repro.parallel.sweep import parallel_service_sweep

        indices = list(range(0, ephemeris.n_samples, 30))
        with trace.recording() as rec:
            parallel_service_sweep(
                ephemeris, requests, time_indices=indices, n_workers=n_workers
            )
            return rec.summary()

    def test_serial_books_balance(self, small_ephemeris, sites):
        requests = generate_requests(sites, 6, 3)
        summary = self._run(small_ephemeris, requests, n_workers=0)
        _assert_books_balance(summary)
        assert summary["requests"]["total"] == 6 * 4  # requests x indices

    def test_shard_traces_merge_to_serial_cause_totals(self, small_ephemeris, sites):
        requests = generate_requests(sites, 6, 3)
        serial = self._run(small_ephemeris, requests, n_workers=0)
        pooled = self._run(small_ephemeris, requests, n_workers=2)
        _assert_books_balance(pooled)
        assert pooled["requests"]["causes"] == serial["requests"]["causes"]
        assert pooled["requests"]["served"] == serial["requests"]["served"]
        assert pooled["requests"]["by_lan_pair"] == serial["requests"]["by_lan_pair"]


class TestRequestDetailConsistency:
    """request_detail must agree with serve() on the same budget matrices."""

    def test_served_and_eta_match_serve(self, sat_analysis_small):
        analysis = sat_analysis_small
        pairs = [("ornl-1", "epb-1"), ("ttu-0", "ornl-3")]
        for t_idx in (0, 40, 80):
            etas = analysis.serve(pairs, t_idx)
            for (src, dst), eta in zip(pairs, etas):
                detail = analysis.request_detail(src, dst, t_idx)
                assert detail["served"] == (eta is not None)
                if eta is not None:
                    assert detail["path_eta"] == pytest.approx(eta, abs=1e-15)
                    assert detail["relay"] is not None
                    assert detail["cause"] is None
                else:
                    assert isinstance(detail["cause"], DenialCause)

    def test_candidate_counts_nest(self, sat_analysis_small):
        detail = sat_analysis_small.request_detail("ornl-1", "epb-1", 40)
        counts = detail["candidate_counts"]
        assert counts["platforms"] >= counts["visible"] >= counts["elevation_ok"]
        assert counts["elevation_ok"] >= counts["usable"]


class TestTracedSimulatorRequests:
    def test_simulator_denials_attributed(self, sat_simulator_small, sites):
        requests = [r.endpoints for r in generate_requests(sites, 8, 5)]
        with trace.recording() as rec:
            sat_simulator_small.serve_requests(requests, 0.0)
            records = rec.records()
        assert len(records) == 8
        for record in records:
            assert record["kind"] == "request"
            if not record["served"]:
                assert record["cause"] in CAUSES
                assert record["candidate_counts"]["platforms"] > 0
            else:
                assert record["path"][0] == record["source"]
                assert record["path"][-1] == record["destination"]
                assert len(record["hop_etas"]) == len(record["path"]) - 1
