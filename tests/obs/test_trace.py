"""Tests for the request-level flight recorder (DESIGN.md §10)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.obs import trace
from repro.obs.trace import (
    CAUSES,
    DenialCause,
    TraceConfig,
    TraceRecorder,
    classify_denial,
    read_trace,
)


@pytest.fixture(autouse=True)
def _no_active_recorder():
    """Keep the process-global recorder isolated per test."""
    trace.reset_for_worker()
    yield
    trace.reset_for_worker()


class TestClassifyDenial:
    def test_cascade_order(self):
        assert classify_denial(False, False, False) is DenialCause.NO_VISIBLE_SATELLITE
        assert classify_denial(True, False, False) is DenialCause.LOW_ELEVATION
        assert classify_denial(True, True, False) is DenialCause.LOW_TRANSMISSIVITY
        assert classify_denial(True, True, True) is DenialCause.NO_ROUTE

    def test_causes_tuple_matches_enum(self):
        assert CAUSES == tuple(c.value for c in DenialCause)


class TestConfigValidation:
    def test_sample_rate_bounds(self):
        with pytest.raises(ValidationError):
            TraceConfig(sample_rate=1.5)
        with pytest.raises(ValidationError):
            TraceConfig(sample_rate=-0.1)

    def test_positive_sizes(self):
        with pytest.raises(ValidationError):
            TraceConfig(max_records_per_file=0)
        with pytest.raises(ValidationError):
            TraceConfig(ring_size=0)


class TestRecordValidation:
    def test_served_with_cause_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValidationError):
            rec.record_request(
                t_s=0.0, source="a", destination="b", served=True,
                cause=DenialCause.NO_ROUTE,
            )

    def test_denied_without_cause_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValidationError):
            rec.record_request(t_s=0.0, source="a", destination="b", served=False)

    def test_non_canonical_cause_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValidationError):
            rec.record_request(
                t_s=0.0, source="a", destination="b", served=False, cause="bad_luck"
            )

    def test_unknown_record_kind_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValidationError):
            rec.absorb({"kind": "mystery"})


class TestFileRotation:
    def test_rotates_and_reads_back_in_order(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rec = TraceRecorder(TraceConfig(path=out, max_records_per_file=3))
        for i in range(8):
            rec.record_coverage(t_s=float(i), connected=i % 2 == 0, t_index=i)
        rec.close()
        assert [p.name for p in rec.paths] == [
            "trace.jsonl", "trace.jsonl.1", "trace.jsonl.2",
        ]
        records = list(read_trace(out))
        assert [r["t_index"] for r in records] == list(range(8))
        assert all(r["kind"] == "coverage" for r in records)

    def test_records_are_single_line_json(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rec = TraceRecorder(TraceConfig(path=out))
        rec.record_request(
            t_s=30.0, source="a", destination="b", served=False,
            cause=DenialCause.LOW_ELEVATION,
            candidates=[{"platform": "sat-0", "visible": True}],
            candidate_counts={"platforms": 6, "visible": 1},
        )
        rec.close()
        lines = out.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["cause"] == "low_elevation"
        assert record["candidate_counts"] == {"platforms": 6, "visible": 1}

    def test_candidate_detail_capped(self, tmp_path):
        rec = TraceRecorder(TraceConfig(path=tmp_path / "t.jsonl", max_candidates=2))
        rec.record_request(
            t_s=0.0, source="a", destination="b", served=False,
            cause=DenialCause.LOW_ELEVATION,
            candidates=[{"platform": f"sat-{i}"} for i in range(5)],
        )
        rec.close()
        (record,) = list(read_trace(tmp_path / "t.jsonl"))
        assert len(record["candidates"]) == 2


class TestRingMode:
    def test_memory_bounded_but_analytics_exact(self):
        rec = TraceRecorder(TraceConfig(ring_size=4))
        for i in range(10):
            rec.record_request(
                t_s=float(i), source="a", destination="b", served=i % 2 == 0,
                cause=None if i % 2 == 0 else DenialCause.NO_VISIBLE_SATELLITE,
            )
        assert len(rec.records()) == 4  # ring keeps only the newest
        assert rec.n_requests == 10  # analytics keep counting
        assert rec.n_served == 5
        assert rec.cause_counts["no_visible_satellite"] == 5


class TestSampling:
    def test_rate_one_records_everything(self):
        rec = TraceRecorder(TraceConfig(sample_rate=1.0))
        assert all(rec.sampled("a", "b", k) for k in range(100))

    def test_rate_zero_records_nothing(self):
        rec = TraceRecorder(TraceConfig(sample_rate=0.0))
        assert not any(rec.sampled("a", "b", k) for k in range(100))

    def test_deterministic_and_independent_of_order(self):
        rec1 = TraceRecorder(TraceConfig(sample_rate=0.4, seed=3))
        rec2 = TraceRecorder(TraceConfig(sample_rate=0.4, seed=3))
        keys = list(range(200))
        picked1 = [k for k in keys if rec1.sampled("ornl", "epb", k)]
        picked2 = [k for k in reversed(keys) if rec2.sampled("ornl", "epb", k)]
        assert picked1 == sorted(picked2)
        assert 0 < len(picked1) < len(keys)

    def test_seed_changes_the_sample(self):
        a = TraceRecorder(TraceConfig(sample_rate=0.3, seed=0))
        b = TraceRecorder(TraceConfig(sample_rate=0.3, seed=99))
        keys = [k for k in range(300)]
        assert [a.sampled("x", "y", k) for k in keys] != [
            b.sampled("x", "y", k) for k in keys
        ]


class TestSummaryAnalytics:
    def _populated(self):
        rec = TraceRecorder()
        rec.record_request(
            t_s=0.0, t_index=0, source="h1", destination="h2", served=True,
            source_lan="ornl", destination_lan="epb",
            path=["h1", "sat-3", "h2"], hop_etas=[0.8, 0.9], path_eta=0.72,
            fidelity=0.95, relay="sat-3",
        )
        rec.record_request(
            t_s=0.0, t_index=0, source="h3", destination="h4", served=False,
            source_lan="epb", destination_lan="ornl",
            cause=DenialCause.LOW_ELEVATION,
        )
        rec.record_request(
            t_s=30.0, t_index=1, source="h1", destination="h2", served=False,
            source_lan="ornl", destination_lan="epb",
            cause=DenialCause.NO_VISIBLE_SATELLITE,
        )
        return rec

    def test_counts_and_cause_breakdown(self):
        summary = self._populated().summary()
        req = summary["requests"]
        assert req["total"] == 3 and req["served"] == 1 and req["denied"] == 2
        assert req["served_pct"] == pytest.approx(100.0 / 3.0)
        assert req["mean_fidelity"] == pytest.approx(0.95)
        assert req["causes"]["low_elevation"] == 1
        assert req["causes"]["no_visible_satellite"] == 1
        assert req["causes"]["no_route"] == 0

    def test_lan_pairs_are_order_insensitive(self):
        summary = self._populated().summary()
        pairs = summary["requests"]["by_lan_pair"]
        assert set(pairs) == {"epb<->ornl"}  # both directions fold together
        assert pairs["epb<->ornl"]["total"] == 3
        assert pairs["epb<->ornl"]["served"] == 1
        assert pairs["epb<->ornl"]["low_elevation"] == 1

    def test_satellite_utilization(self):
        summary = self._populated().summary()
        assert summary["satellites"]["utilization"] == {"sat-3": 1}

    def test_step_accounting(self):
        summary = self._populated().summary()
        steps = summary["steps"]
        assert steps["evaluated"] == 2
        assert steps["fully_denied"] == 1  # t_index 1: 0/1 served
        assert steps["worst_served_fraction"] == 0.0

    def test_coverage_summary_matches_core_coverage(self):
        import numpy as np

        from repro.core.coverage import coverage_from_mask

        times = np.arange(0.0, 600.0, 60.0)
        mask = np.array([False, True, True, False, False, True, False, True, True, False])
        rec = TraceRecorder()
        rec.horizon_s = 600.0
        for i, t in enumerate(times):
            rec.record_coverage(t_s=float(t), connected=bool(mask[i]), t_index=i)
        cov = rec.coverage_summary()
        expected = coverage_from_mask(times, mask, n_satellites=1, horizon_s=600.0)
        assert cov["percentage"] == expected.percentage
        assert cov["covered_s"] == pytest.approx(expected.total_minutes * 60.0)
        assert cov["outages"][0] == [0.0, 60.0]
        assert cov["longest_outage_s"] == pytest.approx(120.0)


class TestShardProtocol:
    def _shard_roundtrip(self, parent_cfg, tmp_path):
        parent = trace.start(config=parent_cfg)
        cfg = trace.shard_config(first_index=7)
        assert cfg is not None
        # Simulate the worker side in-process but against a detached
        # recorder, exactly like a pool worker would after fork.
        shard = trace.shard_recorder(cfg)
        shard.record_request(
            t_s=210.0, t_index=7, source="a", destination="b", served=False,
            source_lan="ornl", destination_lan="epb",
            cause=DenialCause.LOW_TRANSMISSIVITY,
        )
        shard.record_coverage(t_s=210.0, connected=True, t_index=7)
        payload = trace.shard_payload(shard)
        trace.absorb_shard(payload)
        summary = trace.stop()
        assert summary["requests"]["total"] == 1
        assert summary["requests"]["causes"]["low_transmissivity"] == 1
        assert summary["coverage"]["connected_samples"] == 1
        return cfg

    def test_file_backed_shard_merges_and_cleans_up(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        cfg = self._shard_roundtrip(TraceConfig(path=base), tmp_path)
        assert cfg["path"].endswith(".shard-000007")
        # parent stream holds the absorbed records; shard file deleted
        kinds = [r["kind"] for r in read_trace(base)]
        assert kinds == ["request", "coverage"]
        assert list(tmp_path.glob("*.shard-*")) == []

    def test_ring_backed_shard_ships_records_in_payload(self, tmp_path):
        cfg = self._shard_roundtrip(TraceConfig(path=None), tmp_path)
        assert cfg["path"] is None

    def test_shard_config_none_when_tracing_off(self):
        assert trace.shard_config(first_index=0) is None

    def test_absorb_shard_tolerates_none(self):
        trace.absorb_shard(None)  # tracing off / worker had no recorder

    def test_shard_sampling_matches_parent(self):
        parent = TraceRecorder(TraceConfig(sample_rate=0.35, seed=11))
        trace.start(config=parent.config)
        shard = trace.shard_recorder(trace.shard_config(first_index=0))
        keys = range(500)
        assert [parent.sampled("a", "b", k) for k in keys] == [
            shard.sampled("a", "b", k) for k in keys
        ]
        trace.stop()


class TestLifecycle:
    def test_start_stop_round_trip(self, tmp_path):
        rec = trace.start(tmp_path / "t.jsonl", sample_rate=0.5)
        assert trace.active() is rec
        summary = trace.stop()
        assert trace.active() is None
        assert summary["sample_rate"] == 0.5

    def test_recording_context_manager(self):
        with trace.recording() as rec:
            assert trace.active() is rec
        assert trace.active() is None

    def test_reset_for_worker_detaches_without_closing(self, tmp_path):
        rec = trace.start(tmp_path / "t.jsonl")
        rec.record_coverage(t_s=0.0, connected=True)
        trace.reset_for_worker()
        assert trace.active() is None
        rec.record_coverage(t_s=60.0, connected=False)  # still writable
        rec.close()
        assert len(list(read_trace(tmp_path / "t.jsonl"))) == 2
