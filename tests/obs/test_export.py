"""Tests for the Prometheus text dump and the profile table."""

from repro import obs
from repro.obs.export import escape_label_value, render_profile_table, to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Profile


class TestPrometheusText:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.counter("network.requests.served").inc(3)
        text = to_prometheus_text(reg)
        assert "repro_network_requests_served_total 3" in text

    def test_gauge_plain_name(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.gauge("shm.arena.bytes").set(1024)
        text = to_prometheus_text(reg)
        assert "repro_shm_arena_bytes 1024" in text
        assert "# TYPE repro_shm_arena_bytes gauge" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.enabled = True
        h = reg.histogram("fid", buckets=(0.5, 1.0))
        h.observe(0.4)
        h.observe(0.9)
        text = to_prometheus_text(reg)
        assert 'repro_fid_bucket{le="0.5"} 1' in text
        assert 'repro_fid_bucket{le="1"} 2' in text
        assert 'repro_fid_bucket{le="+Inf"} 2' in text
        assert "repro_fid_count 2" in text

    def test_default_registry_used_when_omitted(self, telemetry):
        obs.counter("export.default").inc()
        assert "repro_export_default_total 1" in to_prometheus_text()

    def test_empty_registry_dumps_empty_string(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_observation_on_bucket_boundary_lands_in_that_bucket(self):
        # The le label is an inclusive upper bound: observe(0.5) counts
        # toward le="0.5", not only the next bucket up.
        reg = MetricsRegistry()
        reg.enabled = True
        h = reg.histogram("edge", buckets=(0.5, 1.0))
        h.observe(0.5)
        h.observe(1.0)
        text = to_prometheus_text(reg)
        assert 'repro_edge_bucket{le="0.5"} 1' in text
        assert 'repro_edge_bucket{le="1"} 2' in text
        assert 'repro_edge_bucket{le="+Inf"} 2' in text

    def test_observation_above_all_bounds_only_in_inf(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.histogram("over", buckets=(0.5,)).observe(2.0)
        text = to_prometheus_text(reg)
        assert 'repro_over_bucket{le="0.5"} 0' in text
        assert 'repro_over_bucket{le="+Inf"} 1' in text


class TestLabelEscaping:
    def test_backslash_escaped_before_quote_and_newline(self):
        # Escaping order matters: the backslashes introduced for quotes
        # and newlines must not themselves get re-escaped.
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_value_untouched(self):
        assert escape_label_value("0.5") == "0.5"

    def test_already_escaped_sequence_round_trips(self):
        assert escape_label_value('\\n') == "\\\\n"


class TestProfileTable:
    def test_renders_rows_slowest_first(self):
        prof = Profile()
        prof.record("fast", 0.001)
        prof.record("slow", 2.0)
        table = render_profile_table(prof)
        assert "RUN PROFILE" in table
        assert table.index("slow") < table.index("fast")

    def test_empty_profile_renders(self):
        assert "RUN PROFILE" in render_profile_table(Profile())
