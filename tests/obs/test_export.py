"""Tests for the Prometheus text dump and the profile table."""

from repro import obs
from repro.obs.export import render_profile_table, to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Profile


class TestPrometheusText:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.counter("network.requests.served").inc(3)
        text = to_prometheus_text(reg)
        assert "repro_network_requests_served_total 3" in text

    def test_gauge_plain_name(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.gauge("shm.arena.bytes").set(1024)
        text = to_prometheus_text(reg)
        assert "repro_shm_arena_bytes 1024" in text
        assert "# TYPE repro_shm_arena_bytes gauge" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.enabled = True
        h = reg.histogram("fid", buckets=(0.5, 1.0))
        h.observe(0.4)
        h.observe(0.9)
        text = to_prometheus_text(reg)
        assert 'repro_fid_bucket{le="0.5"} 1' in text
        assert 'repro_fid_bucket{le="1"} 2' in text
        assert 'repro_fid_bucket{le="+Inf"} 2' in text
        assert "repro_fid_count 2" in text

    def test_default_registry_used_when_omitted(self, telemetry):
        obs.counter("export.default").inc()
        assert "repro_export_default_total 1" in to_prometheus_text()


class TestProfileTable:
    def test_renders_rows_slowest_first(self):
        prof = Profile()
        prof.record("fast", 0.001)
        prof.record("slow", 2.0)
        table = render_profile_table(prof)
        assert "RUN PROFILE" in table
        assert table.index("slow") < table.index("fast")

    def test_empty_profile_renders(self):
        assert "RUN PROFILE" in render_profile_table(Profile())
