"""Unit tests for counters, gauges, histograms, and their aggregation."""

import pytest

from repro import obs
from repro.errors import ValidationError
from repro.obs.metrics import (
    UNIT_INTERVAL_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    metrics_delta,
)


class TestDisabledMode:
    def test_records_are_noops_when_disabled(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc()
        g.set(5.0)
        g.add(1.0)
        h.observe(0.9)
        assert c.value == 0.0
        assert g.value == 0.0
        assert h.count == 0

    def test_enable_flag_turns_recording_on(self):
        reg = MetricsRegistry()
        reg.enabled = True
        c = reg.counter("c")
        c.inc(3)
        assert c.value == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.enabled = True
        c = reg.counter("c")
        h = reg.histogram("h")
        c.inc()
        h.observe(0.5)
        reg.reset()
        assert c is reg.counter("c")  # same object survives
        assert c.value == 0.0
        assert h.count == 0 and h.sum == 0.0

    def test_module_singleton_convenience(self):
        assert isinstance(obs.counter("test.singleton"), Counter)
        assert obs.counter("test.singleton") is obs.registry().counter(
            "test.singleton"
        )


class TestHistogram:
    def test_default_buckets_are_unit_interval(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").bounds == UNIT_INTERVAL_BUCKETS

    def test_bounds_must_ascend(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            Histogram("bad", reg, bounds=(1.0, 0.5))

    def test_mean_is_exact(self):
        reg = MetricsRegistry()
        reg.enabled = True
        h = reg.histogram("h")
        values = [0.91, 0.955, 0.97, 0.999]
        for v in values:
            h.observe(v)
        assert h.mean == pytest.approx(sum(values) / len(values), abs=0.0)
        assert h.min == min(values)
        assert h.max == max(values)

    def test_overflow_bucket_catches_large_values(self):
        reg = MetricsRegistry()
        reg.enabled = True
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(99.0)
        assert h.bucket_counts == [0, 0, 1]


class TestSnapshotMergeDelta:
    def _populated(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(0.93)
        return reg

    def test_merge_adds_counters_and_histograms(self):
        a = self._populated()
        b = self._populated()
        a.merge(b.snapshot())
        assert a.counter("c").value == 4.0
        assert a.gauge("g").value == 7.0  # last write wins
        assert a.histogram("h").count == 2

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.enabled = True
        a.histogram("h", buckets=(0.5, 1.0)).observe(0.4)
        snap = a.snapshot()
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.25, 0.75, 1.0))
        with pytest.raises(ValidationError):
            b.merge(snap)

    def test_delta_subtracts_baseline(self):
        reg = self._populated()
        baseline = reg.snapshot()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(0.95)
        delta = metrics_delta(reg.snapshot(), baseline)
        assert delta["c"]["value"] == 5.0
        assert delta["h"]["count"] == 1
        assert "g" not in delta  # unchanged gauge dropped

    def test_delta_then_merge_reconstructs_totals(self):
        # The fork-inheritance scenario: child starts from parent's
        # counts, records more, ships the delta; parent merge must land
        # on the union of both.
        parent = self._populated()
        child = MetricsRegistry()
        child.enabled = True
        child.merge(parent.snapshot())  # simulate fork inheritance
        entry = child.snapshot()
        child.counter("c").inc(10)
        child.histogram("h").observe(0.9)
        parent.merge(metrics_delta(child.snapshot(), entry))
        assert parent.counter("c").value == 12.0
        assert parent.histogram("h").count == 2


class TestHistogramQuantile:
    def _hist(self, bounds=(1.0, 2.0, 4.0, 8.0)):
        reg = MetricsRegistry()
        reg.enabled = True
        return reg.histogram("q", buckets=bounds)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(self._hist().quantile(0.5))

    def test_rejects_out_of_range(self):
        h = self._hist()
        with pytest.raises(ValidationError):
            h.quantile(-0.1)
        with pytest.raises(ValidationError):
            h.quantile(1.5)

    def test_single_sample_is_exact(self):
        h = self._hist()
        h.observe(3.0)
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 3.0

    def test_extremes_clamp_to_observed_min_max(self):
        h = self._hist()
        for v in (0.5, 1.5, 3.0, 7.0):
            h.observe(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_monotone_in_q(self):
        h = self._hist()
        import numpy as np

        rng = np.random.default_rng(2)
        for v in rng.exponential(2.0, size=500):
            h.observe(float(v))
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert h.min <= qs[0] and qs[-1] <= h.max

    def test_uniform_median_lands_in_right_bucket(self):
        h = self._hist(bounds=tuple(float(b) / 10 for b in range(1, 11)))
        import numpy as np

        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 1.0, size=2000)
        for v in samples:
            h.observe(float(v))
        exact = float(np.percentile(samples, 50))
        # Bucket interpolation is exact to within one bucket width.
        assert abs(h.quantile(0.5) - exact) <= 0.1

    def test_quantile_survives_merge(self):
        a = self._hist()
        b = self._hist()
        for v in (0.5, 1.5):
            a.observe(v)
        for v in (3.0, 7.0):
            b.observe(v)
        merged = MetricsRegistry()
        merged.enabled = True
        merged.merge({"q": a.snapshot()})
        merged.merge({"q": b.snapshot()})
        h = merged.histogram("q")
        assert h.count == 4
        assert h.quantile(0.5) <= h.quantile(0.99)
