"""Tests for run-report rendering and run-to-run diffs."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.obs.report import (
    DiffThresholds,
    diff_summaries,
    load_summary,
    render_ascii_report,
    render_diff_table,
    render_html_report,
    summarize,
)


def _manifest(served=60, denied=40, fidelity_sum=57.0, with_trace=True):
    data = {
        "command": "sweep",
        "git_sha": "abc123def456",
        "created_at_unix_s": 1_700_000_000.0,
        "workload": {"sizes": [6, 12], "seed": 7},
        "metrics": {
            "network.requests.served": {"type": "counter", "value": served},
            "network.requests.denied": {"type": "counter", "value": denied},
            "network.fidelity": {
                "type": "histogram",
                "sum": fidelity_sum,
                "count": served,
            },
        },
        "profile": {
            "sweep/serve": {"total_s": 2.0, "calls": 1},
            "sweep/propagate": {"total_s": 1.0, "calls": 1},
        },
    }
    if with_trace:
        data["trace"] = {
            "schema": 1,
            "sample_rate": 1.0,
            "requests": {
                "total": served + denied,
                "served": served,
                "denied": denied,
                "served_pct": 100.0 * served / (served + denied),
                "mean_fidelity": fidelity_sum / served,
                "causes": {
                    "no_visible_satellite": denied - 10,
                    "low_elevation": 10,
                    "low_transmissivity": 0,
                    "no_route": 0,
                },
                "by_lan_pair": {
                    "epb<->ornl": {"total": 50, "served": 30, "low_elevation": 5},
                },
            },
            "satellites": {"utilization": {"sat-3": 25, "sat-7": 12}},
            "coverage": {
                "percentage": 55.17,
                "outages": [[0.0, 1200.0], [4000.0, 5200.0]],
                "longest_outage_s": 1200.0,
            },
        }
    return data


def _bench():
    return {
        "bench": "obs_overhead",
        "git_sha": "abc123def456",
        "recorded_at_unix_s": 1_700_000_000.0,
        "workload": {"n_satellites": 12},
        "timings_s": {"baseline": 1.0, "enabled": 1.02},
        "speedup": 0.98,
    }


class TestSummarize:
    def test_manifest_without_trace_uses_metrics(self):
        s = summarize(_manifest(with_trace=False))
        assert s["kind"] == "manifest"
        assert s["requests_total"] == 100
        assert s["served_pct"] == pytest.approx(60.0)
        assert s["mean_fidelity"] == pytest.approx(0.95)
        assert s["phases"]["sweep/serve"] == 2.0
        assert s["causes"] == {}

    def test_manifest_trace_overrides_and_adds_causes(self):
        s = summarize(_manifest())
        assert s["coverage_pct"] == pytest.approx(55.17)
        # zero-count causes are dropped from the summary
        assert s["causes"] == {"no_visible_satellite": 30, "low_elevation": 10}
        assert s["satellites"] == {"sat-3": 25, "sat-7": 12}
        assert s["by_lan_pair"]["epb<->ornl"]["served"] == 30

    def test_bench_record(self):
        s = summarize(_bench())
        assert s["kind"] == "bench"
        assert s["timings_s"] == {"baseline": 1.0, "enabled": 1.02}
        assert s["speedup"] == pytest.approx(0.98)
        assert s["served_pct"] is None

    def test_trajectory_summarizes_latest_entry(self):
        older = _bench()
        newer = _bench()
        newer["timings_s"] = {"baseline": 1.0, "enabled": 1.5}
        s = summarize({"bench": "obs_overhead", "schema": 1, "trajectory": [older, newer]})
        assert s["kind"] == "trajectory"
        assert s["trajectory_len"] == 2
        assert s["timings_s"]["enabled"] == 1.5

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ValidationError):
            summarize({"trajectory": []})


class TestLoadSummary:
    def test_loads_and_labels(self, tmp_path):
        p = tmp_path / "run.json"
        p.write_text(json.dumps(_manifest()))
        s = load_summary(p)
        assert s["label"] == "run.json"

    def test_missing_file_raises_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            load_summary(tmp_path / "nope.json")

    def test_malformed_json_raises_validation_error(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ValidationError):
            load_summary(p)

    def test_non_object_rejected(self, tmp_path):
        p = tmp_path / "list.json"
        p.write_text("[1, 2]")
        with pytest.raises(ValidationError):
            load_summary(p)


class TestDiff:
    def test_no_thresholds_never_breaches(self):
        a = summarize(_manifest(served=60, denied=40))
        b = summarize(_manifest(served=40, denied=60))
        rows = diff_summaries(a, b)
        assert all(not r.breached for r in rows)
        served = next(r for r in rows if r.metric == "served_pct")
        assert served.delta == pytest.approx(-20.0)

    def test_scalar_threshold_breaches_on_abs_delta(self):
        a = summarize(_manifest(served=60, denied=40))
        b = summarize(_manifest(served=55, denied=45))
        rows = diff_summaries(a, b, DiffThresholds(served_pct=1.0))
        served = next(r for r in rows if r.metric == "served_pct")
        assert served.breached
        # under the threshold -> no breach
        rows = diff_summaries(a, b, DiffThresholds(served_pct=10.0))
        assert not next(r for r in rows if r.metric == "served_pct").breached

    def test_cause_rows_union_both_sides(self):
        a = summarize(_manifest())
        b_data = _manifest()
        b_data["trace"]["requests"]["causes"] = {"no_route": 3}
        b = summarize(b_data)
        rows = {r.metric: r for r in diff_summaries(a, b, DiffThresholds(cause_count=1))}
        assert rows["cause/no_route"].breached  # 0 -> 3
        assert rows["cause/no_visible_satellite"].breached  # 30 -> 0

    def test_timing_rows_relative_percent(self):
        a, b = summarize(_bench()), summarize(_bench())
        b["timings_s"] = {"baseline": 1.0, "enabled": 1.2}
        rows = {r.metric: r for r in diff_summaries(a, b, DiffThresholds(timing_pct=10.0))}
        enabled = rows["timing/enabled"]
        assert enabled.delta == pytest.approx(100.0 * (1.2 - 1.02) / 1.02)
        assert enabled.breached
        assert not rows["timing/baseline"].breached

    def test_render_marks_breaches(self):
        a = summarize(_manifest(served=60, denied=40))
        b = summarize(_manifest(served=40, denied=60))
        rows = diff_summaries(a, b, DiffThresholds(served_pct=1.0))
        table = render_diff_table(rows, label_a="base", label_b="new")
        assert "RUN DIFF" in table
        assert "!" in table
        assert "base" in table and "new" in table


class TestRenderers:
    def test_html_is_self_contained(self):
        page = render_html_report(summarize(_manifest()))
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page and "<svg" in page
        for external in ("http://", "https://", "<script", "<link", "@import"):
            assert external not in page
        assert "no visible satellite" in page
        assert "epb&lt;-&gt;ornl" in page  # escaped pair label

    def test_html_handles_bench_summary(self):
        page = render_html_report(summarize(_bench()))
        assert "Timings" in page
        assert "Requests" not in page  # no request facet on a bench record

    def test_ascii_report_sections(self):
        text = render_ascii_report(summarize(_manifest()))
        assert "RUN REPORT" in text
        assert "DENIAL CAUSES" in text
        assert "PLATFORM UTILIZATION" in text
        assert "coverage: 55.17 %" in text

    def test_ascii_report_minimal_summary(self):
        text = render_ascii_report(summarize({"command": "threshold"}))
        assert "RUN REPORT" in text


def _slo_summary(n_snapshots=5, final="warning"):
    snapshots = []
    for i in range(n_snapshots):
        snapshots.append(
            {
                "t": 1000.0 + i,
                "served_rate_per_s": 2.0 + i,
                "submitted_rate_per_s": 3.0,
                "latency_p99_s": 0.004,
                "objectives": {
                    "availability": {
                        "state": "critical" if i == 2 else "ok",
                        "burn_short": 1.0,
                        "burn_long": 1.0,
                    }
                },
            }
        )
    return {
        "spec": {"served_fraction_target": 0.95, "long_window_s": 60.0},
        "final_states": {"availability": final},
        "transitions": [
            {"objective": "availability", "from": "ok", "to": final, "t": 1002.0}
        ],
        "snapshots": snapshots,
    }


class TestTimestampsAndSLO:
    def _stamped_manifest(self):
        data = _manifest()
        data["started_at"] = "2026-08-07T12:00:00Z"
        data["finished_at"] = "2026-08-07T12:00:42Z"
        data["duration_s"] = 42.5
        data["extra"] = {"slo": _slo_summary()}
        return data

    def test_summarize_picks_up_timestamps_and_slo(self):
        s = summarize(self._stamped_manifest())
        assert s["started_at"] == "2026-08-07T12:00:00Z"
        assert s["finished_at"] == "2026-08-07T12:00:42Z"
        assert s["duration_s"] == pytest.approx(42.5)
        assert s["slo"]["final_states"] == {"availability": "warning"}

    def test_summarize_without_extras_is_none(self):
        s = summarize(_manifest())
        assert s["started_at"] is None
        assert s["slo"] is None

    def test_ascii_report_renders_timestamps_and_slo(self):
        text = render_ascii_report(summarize(self._stamped_manifest()))
        assert "2026-08-07T12:00:00Z -> 2026-08-07T12:00:42Z (42.500 s)" in text
        assert "SLO" in text
        assert "warning" in text
        assert "1 transitions, 5 snapshots" in text
        assert "served rate:" in text  # sparkline from the snapshot series

    def test_html_report_renders_slo_panel(self):
        page = render_html_report(summarize(self._stamped_manifest()))
        assert "SLO" in page
        assert "2026-08-07T12:00:00Z" in page
        # The time-series panel: a polyline over a state band that
        # includes the mid-run critical excursion.
        assert "polyline" in page
        assert "#b5544d" in page  # critical color in the band
        assert "availability" in page

    def test_single_snapshot_skips_timeseries(self):
        data = self._stamped_manifest()
        data["extra"]["slo"] = _slo_summary(n_snapshots=1)
        page = render_html_report(summarize(data))
        assert "not enough snapshots" in page
        assert "polyline" not in page

    def test_ascii_sparkline_scaling(self):
        from repro.obs.report import _ascii_sparkline

        assert _ascii_sparkline([]) == ""
        assert _ascii_sparkline([1.0]) == ""
        spark = _ascii_sparkline([0.0, 5.0, 10.0])
        assert len(spark) == 3
        assert spark[0] == " " and spark[-1] == "@"
        long = _ascii_sparkline([float(i) for i in range(500)], width=40)
        assert len(long) == 40
