"""Tests for the run manifest and its provenance helpers."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    git_sha,
    host_info,
    run_manifest,
    write_run_manifest,
)


class TestProvenance:
    def test_git_sha_shape(self):
        sha = git_sha()
        assert sha == "unknown" or (len(sha) == 40 and all(c in "0123456789abcdef" for c in sha))

    def test_git_sha_outside_checkout(self, tmp_path):
        assert git_sha(cwd=tmp_path) == "unknown"

    def test_host_info_fields(self):
        info = host_info()
        assert {"hostname", "platform", "machine", "python", "cpu_count"} <= set(info)

    def test_benchmarks_reporting_reexports(self):
        import sys

        sys.path.insert(0, str(Path(__file__).resolve().parents[2]))
        try:
            from benchmarks import reporting
        finally:
            sys.path.pop(0)
        assert reporting.git_sha is git_sha
        assert reporting.host_info is host_info


class TestWorkerReports:
    def test_disabled_reports_are_dropped(self):
        obs.reset()
        obs.record_worker_report({"pid": 1})
        assert obs.worker_reports() == []

    def test_enabled_reports_accumulate(self, telemetry):
        obs.record_worker_report({"pid": 1, "n_steps": 3})
        obs.record_worker_report({"pid": 2, "n_steps": 4})
        reports = obs.worker_reports()
        assert [r["pid"] for r in reports] == [1, 2]

    def test_reports_are_copies(self, telemetry):
        obs.record_worker_report({"pid": 1})
        obs.worker_reports()[0]["pid"] = 99
        assert obs.worker_reports()[0]["pid"] == 1


class TestRunManifest:
    def test_contains_all_sections(self, telemetry):
        obs.counter("m.c").inc()
        with obs.span("m-phase"):
            pass
        obs.record_worker_report({"pid": 1})
        manifest = run_manifest(command="sweep", argv=["sweep"], workload={"sizes": [6]})
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["command"] == "sweep"
        assert manifest["metrics"]["m.c"]["value"] == 1.0
        assert "m-phase" in manifest["profile"]
        assert manifest["workers"][0]["pid"] == 1
        assert manifest["workload"]["sizes"] == [6]

    def test_workload_paths_coerced(self, telemetry):
        manifest = run_manifest(workload={"out": Path("/tmp/x"), "none": None})
        assert manifest["workload"]["out"] == "/tmp/x"
        assert manifest["workload"]["none"] is None

    def test_write_is_valid_json(self, telemetry, tmp_path):
        path = write_run_manifest(tmp_path / "sub" / "manifest.json", command="t")
        loaded = json.loads(path.read_text())
        assert loaded["command"] == "t"
        assert loaded["git_sha"] == git_sha()


class TestServeLatencyHistogram:
    """The streaming front end's latency histogram lands in the manifest
    with the full field set the serve-smoke CI check asserts."""

    def test_latency_fields_present(self, telemetry):
        from repro.serve.server import LATENCY_BUCKETS_S

        hist = obs.histogram("serve.latency_s", buckets=LATENCY_BUCKETS_S)
        for v in (2e-5, 4e-4, 1.2e-3, 0.05):
            hist.observe(v)
        obs.counter("serve.requests.submitted").inc(4)
        manifest = run_manifest(command="serve")
        entry = manifest["metrics"]["serve.latency_s"]
        assert entry["type"] == "histogram"
        assert entry["bounds"] == list(LATENCY_BUCKETS_S)
        assert len(entry["bucket_counts"]) == len(LATENCY_BUCKETS_S) + 1
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(2e-5 + 4e-4 + 1.2e-3 + 0.05)
        assert entry["min"] == 2e-5 and entry["max"] == 0.05
        assert manifest["metrics"]["serve.requests.submitted"]["value"] == 4.0

    def test_quantiles_recoverable_from_manifest(self, telemetry):
        from repro.serve.server import LATENCY_BUCKETS_S

        hist = obs.histogram("serve.latency_s", buckets=LATENCY_BUCKETS_S)
        for v in (1e-4, 2e-4, 5e-4, 1e-3, 5e-3):
            hist.observe(v)
        assert hist.quantile(0.5) <= hist.quantile(0.99)
        manifest = run_manifest(command="serve")
        entry = manifest["metrics"]["serve.latency_s"]
        assert sum(entry["bucket_counts"]) == entry["count"] == 5
