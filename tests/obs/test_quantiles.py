"""Quantile edge cases: the cumulative and windowed histograms side by side.

The cumulative :class:`~repro.obs.metrics.Histogram` interpolates inside
fixed buckets (resolution bounded by the bucket layout); the windowed
:class:`~repro.obs.live.WindowedHistogram` retains samples and is exact.
Both must agree on the degenerate cases — empty, single sample, q at the
extremes — and stay within their respective tolerance of
``numpy.quantile`` on random data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import live
from repro.obs.metrics import Histogram, MetricsRegistry


def make_cumulative(bounds=None) -> Histogram:
    reg = MetricsRegistry()
    reg.enabled = True
    if bounds is None:
        return reg.histogram("t.q.hist")
    return reg.histogram("t.q.hist", buckets=bounds)


def make_windowed() -> live.WindowedHistogram:
    # Two hour-long buckets: the whole test run stays inside the window
    # (and survives one wall-clock bucket boundary) with a 2-slot ring.
    reg = MetricsRegistry()
    reg.enabled = True
    return live.WindowedHistogram("t.q.whist", reg, window_s=7200.0, bucket_s=3600.0)


@pytest.fixture(params=["cumulative", "windowed"])
def histogram(request):
    """Both histogram variants, same observe/quantile surface."""
    return make_cumulative() if request.param == "cumulative" else make_windowed()


class TestSharedEdgeCases:
    def test_empty_is_nan(self, histogram):
        value = histogram.quantile(0.5)
        assert value != value

    def test_single_sample_every_q(self, histogram):
        histogram.observe(0.042)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.042, abs=1e-12)

    def test_q_zero_is_min_q_one_is_max(self, histogram):
        for v in (0.5, 0.003, 0.08, 0.0301):
            histogram.observe(v)
        assert histogram.quantile(0.0) == pytest.approx(0.003, abs=1e-12)
        assert histogram.quantile(1.0) == pytest.approx(0.5, abs=1e-12)

    def test_out_of_range_q_rejected(self, histogram):
        histogram.observe(1.0)
        for q in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValidationError):
                histogram.quantile(q)

    def test_identical_samples(self, histogram):
        for _ in range(10):
            histogram.observe(0.25)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.25, abs=1e-12)


class TestCumulativeVsNumpy:
    def test_within_bucket_resolution(self):
        hist = make_cumulative()
        rng = np.random.default_rng(3)
        samples = rng.exponential(scale=0.02, size=2000)
        for s in samples:
            hist.observe(float(s))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(samples, q))
            estimate = hist.quantile(q)
            # The estimate must land inside the bucket containing the
            # exact quantile — i.e. off by at most one bucket span.
            bounds = (0.0,) + tuple(hist.bounds) + (float("inf"),)
            spans = [
                (lo, hi) for lo, hi in zip(bounds, bounds[1:]) if lo <= exact <= hi
            ]
            lo, hi = spans[0]
            assert lo <= estimate <= min(hi, samples.max())

    def test_two_samples_interpolate(self):
        hist = make_cumulative(bounds=(1.0, 2.0, 3.0))
        hist.observe(1.5)
        hist.observe(2.5)
        # Median falls between the two buckets; the estimate must stay
        # inside the observed range.
        assert 1.5 <= hist.quantile(0.5) <= 2.5


class TestWindowedVsNumpy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_agreement_random_data(self, seed):
        hist = make_windowed()
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-5.0, sigma=2.0, size=1111)
        for s in samples:
            hist.observe(float(s))
        for q in np.linspace(0.0, 1.0, 21):
            assert hist.quantile(float(q)) == pytest.approx(
                float(np.quantile(samples, q)), abs=1e-12, rel=1e-12
            )

    def test_exact_agreement_integer_positions(self):
        hist = make_windowed()
        for v in range(101):
            hist.observe(float(v))
        assert hist.quantile(0.5) == 50.0
        assert hist.quantile(0.25) == 25.0
        assert hist.quantile(0.999) == pytest.approx(
            float(np.quantile(np.arange(101.0), 0.999)), abs=1e-12
        )
