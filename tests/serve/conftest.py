"""Fixtures and asyncio plumbing for the streaming-service suite.

pytest-asyncio is not a dependency of this repository; the local
``asyncio`` marker registered here runs coroutine tests on a fresh
event loop via :func:`asyncio.run`, which is all the deterministic
server tests need.

The request streams are small grid-aligned Poisson draws over the
12-satellite session fixture; ``mixed_schedule`` is the fixed
fault schedule shape the chaos suite pins (full satellite outage +
weather fade + link flap) so the differential harness exercises a
non-empty fault plane.
"""

from __future__ import annotations

import asyncio
import inspect

import pytest

from repro import obs
from repro.data.ground_nodes import all_ground_nodes
from repro.faults import FaultSchedule, LinkFlap, SatelliteOutage, WeatherFade
from repro.network.workload import (
    align_to_grid,
    lans_from_sites,
    poisson_request_stream,
)

HORIZON_S = 7200.0


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "asyncio: run the coroutine test on a fresh event loop"
    )


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    if pyfuncitem.get_closest_marker("asyncio") is None:
        return None
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {name: pyfuncitem.funcargs[name] for name in pyfuncitem._fixtureinfo.argnames}
    asyncio.run(func(**kwargs))
    return True


@pytest.fixture(scope="session")
def lans():
    return lans_from_sites(all_ground_nodes())


@pytest.fixture(scope="session")
def aligned_stream(small_ephemeris, lans):
    """~70 two-tenant requests over the 2 h fixture, snapped to the grid."""
    stream = poisson_request_stream(
        lans,
        rate_hz=0.01,
        duration_s=HORIZON_S,
        seed=11,
        tenants=("tenant-0", "tenant-1"),
    )
    return align_to_grid(stream, small_ephemeris.times_s)


@pytest.fixture(scope="session")
def solo_stream(small_ephemeris, lans):
    """Single-tenant stream: one admission queue, deterministic shedding."""
    stream = poisson_request_stream(
        lans, rate_hz=0.01, duration_s=HORIZON_S, seed=23
    )
    return align_to_grid(stream, small_ephemeris.times_s)


@pytest.fixture(scope="session")
def mixed_schedule():
    return FaultSchedule(
        events=(
            SatelliteOutage(0.0, HORIZON_S, satellite="sat-004"),
            WeatherFade(0.0, HORIZON_S / 2, site="ttu-0", extra_db=2.5),
            LinkFlap(0.0, 1800.0, node_a="ttu-3", node_b="sat-001"),
        )
    )


@pytest.fixture
def telemetry():
    """Enable metric recording for one test, reset everything afterwards."""
    obs.reset()
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
