"""Robustness tests for the asyncio front end.

Shedding at a full queue is deterministic and canonical (never a silent
drop), backpressure mode never sheds, cancellation mid-run keeps the
accounting invariant, shutdown drains cleanly and closes the server,
and the serve.* metrics agree with the report. Queue-full behavior is
pinned by submitting *before* ``start()`` — with no consumer running
the queue fills deterministically, independent of task scheduling.
"""

import asyncio

import pytest

from repro.errors import ValidationError
from repro.obs.trace import DenialCause
from repro.serve import ServeServer, ServerConfig, build_engine


@pytest.fixture(scope="module")
def engine(small_ephemeris):
    return build_engine("cached", small_ephemeris)


class TestShedding:
    @pytest.mark.asyncio
    async def test_queue_full_sheds_canonically(self, engine, solo_stream):
        server = ServeServer(engine, config=ServerConfig(queue_depth=4))
        shed = []
        for request in solo_stream[:10]:
            outcome = await server.submit(request)
            if outcome is not None:
                shed.append(outcome)
        assert len(shed) == 6
        for outcome in shed:
            assert not outcome.served
            assert outcome.cause == DenialCause.QUEUE_FULL.value
            assert outcome.path == () and outcome.path_eta == 0.0
        server.start()
        await server.drain()
        report = server.report()
        assert report.n_submitted == 10
        assert report.n_shed == 6
        assert report.n_served + report.n_denied == 4
        assert report.accounting_ok
        # No silent drops: every submitted request has an outcome record.
        assert len(report.outcomes) == 10
        assert report.cause_counts[DenialCause.QUEUE_FULL.value] == 6
        assert {o.request_id for o in report.outcomes} == {
            r.request_id for r in solo_stream[:10]
        }

    @pytest.mark.asyncio
    async def test_shed_requests_keep_identity(self, engine, solo_stream):
        server = ServeServer(engine, config=ServerConfig(queue_depth=1))
        await server.submit(solo_stream[0])
        outcome = await server.submit(solo_stream[1])
        assert outcome is not None
        assert outcome.request_id == solo_stream[1].request_id
        assert outcome.tenant == solo_stream[1].tenant
        await server.abort()

    @pytest.mark.asyncio
    async def test_backpressure_never_sheds(self, engine, solo_stream):
        server = ServeServer(
            engine, config=ServerConfig(queue_depth=2, shed_on_full=False)
        )
        server.start()
        for request in solo_stream:
            assert await server.submit(request) is None
        await server.drain()
        report = server.report()
        assert report.n_shed == 0 and report.n_cancelled == 0
        assert report.n_served + report.n_denied == len(solo_stream)
        assert report.accounting_ok
        assert report.max_queue_depth <= 2

    def test_queue_depth_validated(self):
        with pytest.raises(ValidationError):
            ServerConfig(queue_depth=0)


class TestCancellation:
    @pytest.mark.asyncio
    async def test_abort_counts_queued_requests(self, engine, solo_stream):
        server = ServeServer(engine, config=ServerConfig(queue_depth=16))
        for request in solo_stream[:6]:
            await server.submit(request)
        await server.abort()
        report = server.report()
        assert report.n_submitted == 6
        assert report.n_cancelled == 6
        assert report.accounting_ok
        assert report.outcomes == ()

    @pytest.mark.asyncio
    async def test_abort_mid_run_keeps_accounting(self, engine, solo_stream):
        server = ServeServer(engine, config=ServerConfig(queue_depth=len(solo_stream)))
        server.start()
        for request in solo_stream:
            await server.submit(request)
        # Let consumers make some progress, then pull the plug.
        for _ in range(20):
            await asyncio.sleep(0)
        await server.abort()
        report = server.report()
        assert report.n_submitted == len(solo_stream)
        assert report.accounting_ok
        # A pulled request is recorded atomically: completed outcomes and
        # cancellations tile the stream exactly.
        assert len(report.outcomes) == report.n_served + report.n_denied + report.n_shed
        assert len(report.outcomes) + report.n_cancelled == len(solo_stream)

    @pytest.mark.asyncio
    async def test_submit_after_abort_rejected(self, engine, solo_stream):
        server = ServeServer(engine)
        await server.abort()
        with pytest.raises(ValidationError):
            await server.submit(solo_stream[0])


class TestDrain:
    @pytest.mark.asyncio
    async def test_drain_completes_everything(self, engine, solo_stream):
        server = ServeServer(engine)
        report = await server.run(solo_stream)
        assert report.accounting_ok
        assert report.n_cancelled == 0
        assert len(report.outcomes) == len(solo_stream)
        assert [o.request_id for o in report.outcomes] == [
            r.request_id for r in solo_stream
        ]
        assert report.wall_s > 0

    @pytest.mark.asyncio
    async def test_drain_closes_the_server(self, engine, solo_stream):
        server = ServeServer(engine)
        server.start()
        await server.submit(solo_stream[0])
        await server.drain()
        with pytest.raises(ValidationError):
            await server.submit(solo_stream[1])
        with pytest.raises(ValidationError):
            server.start()

    @pytest.mark.asyncio
    async def test_latency_percentiles_ordered(self, engine, solo_stream):
        server = ServeServer(engine)
        report = await server.run(solo_stream)
        assert 0.0 <= report.latency_p50_s <= report.latency_p99_s
        assert report.latency_mean_s > 0.0
        assert report.requests_per_min > 0.0

    @pytest.mark.asyncio
    async def test_late_tenant_gets_a_consumer(self, engine, solo_stream):
        """A tenant first seen after start() still gets drained."""
        import dataclasses

        server = ServeServer(engine)
        server.start()
        await server.submit(solo_stream[0])
        late = dataclasses.replace(solo_stream[1], tenant="late-tenant")
        await server.submit(late)
        await server.drain()
        report = server.report()
        assert report.accounting_ok and report.n_cancelled == 0
        assert {o.tenant for o in report.outcomes} == {"default", "late-tenant"}


class TestMetrics:
    @pytest.mark.asyncio
    async def test_counters_match_report(self, engine, solo_stream, telemetry):
        server = ServeServer(engine, config=ServerConfig(queue_depth=4))
        report = await server.run(solo_stream[:12])
        registry = telemetry.registry()
        assert registry.counter("serve.requests.submitted").value == report.n_submitted
        assert registry.counter("serve.requests.served").value == report.n_served
        assert registry.counter("serve.requests.denied").value == report.n_denied
        assert registry.counter("serve.requests.shed").value == report.n_shed
        latency = registry.histogram("serve.latency_s")
        assert latency.count == report.n_served + report.n_denied
        assert latency.quantile(0.5) <= latency.quantile(0.99)
