"""Integration tests for the HTTP observability endpoints.

Real sockets on an ephemeral loopback port, raw HTTP/1.1 over
``asyncio.open_connection`` — no client library, so the tests also pin
the wire format (status line, Content-Length, Connection: close).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ValidationError
from repro.obs.slo import SLOSpec
from repro.serve import (
    ObservabilityServer,
    ServeServer,
    build_engine,
    outcomes_equal,
)


async def http_get(port: int, path: str, *, raw_request: bytes | None = None):
    """One GET against localhost:port; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = raw_request or f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
    writer.write(request)
    await writer.drain()
    payload = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = payload.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def parse_prometheus(text: str) -> dict[str, float]:
    """Strict line-format parse: returns {series-with-labels: value}."""
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        assert name_part, f"malformed exposition line: {line!r}"
        value = float(value_part)  # must parse (NaN allowed by the format)
        series[name_part] = value
    return series


@pytest.fixture
def server(small_ephemeris, telemetry):
    return ServeServer(build_engine("cached", small_ephemeris))


class TestEndpoints:
    @pytest.mark.asyncio
    async def test_healthz_transitions_with_lifecycle(self, server, aligned_stream):
        http = await ObservabilityServer(server).start()
        try:
            status, _, body = await http_get(http.port, "/healthz")
            assert (status, body) == (200, b"ok\n")
            await server.run(aligned_stream)  # drains -> closed
            status, _, body = await http_get(http.port, "/healthz")
            assert status == 503
            assert b"closed" in body
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_readyz_requires_started_and_advanced(self, server, aligned_stream):
        http = await ObservabilityServer(server).start()
        try:
            status, _, body = await http_get(http.port, "/readyz")
            assert status == 503
            assert b"consumers not started" in body
            assert b"cursor has not advanced" in body

            server.start()
            for request in aligned_stream[:3]:
                await server.submit(request)
            await asyncio.sleep(0)  # let a consumer advance the cursor
            status, _, body = await http_get(http.port, "/readyz")
            assert (status, body) == (200, b"ready\n")
        finally:
            await http.close()
            await server.drain()

    @pytest.mark.asyncio
    async def test_metrics_prometheus_payload(self, server, aligned_stream):
        http = await ObservabilityServer(server).start()
        try:
            await server.run(aligned_stream)
            status, headers, body = await http_get(http.port, "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            assert int(headers["content-length"]) == len(body)
            series = parse_prometheus(body.decode())
            # Windowed serve series present with the window label.
            assert 'repro_serve_live_submitted_rate_per_s{window="60"}' in series
            assert 'repro_serve_live_latency_s_p99{window="60"}' in series
            # Cumulative twins still exported.
            assert series["repro_serve_requests_submitted_total"] == len(
                aligned_stream
            )
            assert series["repro_serve_live_submitted_total"] == len(aligned_stream)
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_status_document(self, server, aligned_stream):
        http = await ObservabilityServer(server).start()
        try:
            await server.run(aligned_stream)
            status, headers, body = await http_get(http.port, "/status")
            assert status == 200
            assert headers["content-type"] == "application/json"
            doc = json.loads(body)
            assert doc["engine"] == "cached"
            assert doc["counts"]["submitted"] == len(aligned_stream)
            assert doc["counts"]["served"] == server.n_served
            assert set(doc["queues"]) == {"tenant-0", "tenant-1"}
            assert doc["cursor_advances"] == server.n_cursor_advances
            assert "slo" not in doc  # no tracker attached
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_status_embeds_slo_when_attached(self, server, aligned_stream):
        tracker = server.slo_tracker(SLOSpec())
        http = await ObservabilityServer(server, slo=tracker).start()
        try:
            await server.run(aligned_stream)
            _, _, body = await http_get(http.port, "/status")
            doc = json.loads(body)
            assert "availability" in doc["slo"]["objectives"]
            assert doc["slo"]["spec"]["served_fraction_target"] == 0.95
        finally:
            await http.close()


class TestProtocol:
    @pytest.mark.asyncio
    async def test_unknown_path_404_lists_endpoints(self, server):
        http = await ObservabilityServer(server).start()
        try:
            status, _, body = await http_get(http.port, "/nope")
            assert status == 404
            for endpoint in (b"/metrics", b"/healthz", b"/readyz", b"/status"):
                assert endpoint in body
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_non_get_405(self, server):
        http = await ObservabilityServer(server).start()
        try:
            status, _, _ = await http_get(
                http.port, "", raw_request=b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert status == 405
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_malformed_request_400(self, server):
        http = await ObservabilityServer(server).start()
        try:
            status, _, _ = await http_get(
                http.port, "", raw_request=b"garbage\r\n\r\n"
            )
            assert status == 400
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_query_strings_ignored(self, server):
        http = await ObservabilityServer(server).start()
        try:
            status, _, _ = await http_get(http.port, "/healthz?verbose=1")
            assert status == 200
            assert http.n_requests == 1
        finally:
            await http.close()

    def test_port_before_start_raises(self, server):
        http = ObservabilityServer(server)
        with pytest.raises(ValidationError):
            http.port

    @pytest.mark.asyncio
    async def test_scrape_does_not_change_outcomes(
        self, small_ephemeris, aligned_stream, telemetry
    ):
        # Bit-identity contract: an aggressively scraped run produces
        # the same outcomes as an unobserved one.
        baseline_server = ServeServer(build_engine("cached", small_ephemeris))
        baseline = await baseline_server.run(aligned_stream)

        observed_server = ServeServer(build_engine("cached", small_ephemeris))
        http = await ObservabilityServer(observed_server).start()
        try:
            observed_server.start()
            for i, request in enumerate(aligned_stream):
                await observed_server.submit(request)
                if i % 5 == 0:
                    for path in ("/metrics", "/status", "/readyz"):
                        await http_get(http.port, path)
            await observed_server.drain()
        finally:
            await http.close()
        observed = observed_server.report()
        assert len(observed.outcomes) == len(baseline.outcomes)
        assert all(
            outcomes_equal(x, y)
            for x, y in zip(observed.outcomes, baseline.outcomes)
        )
