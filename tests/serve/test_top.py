"""The ``repro top`` dashboard: pure renderer tests plus the poll loop.

:func:`render_dashboard` is a pure function of one ``/status`` payload,
so the layout pins without a server; the loop tests drive
:func:`run_top` against a live :class:`ObservabilityServer` through the
real urllib fetch path.
"""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.errors import ValidationError
from repro.serve import ObservabilityServer, ServeServer, build_engine
from repro.serve.top import fetch_status, render_dashboard, run_top

STATUS = {
    "engine": "cached",
    "kernel_backend": "numpy",
    "uptime_s": 12.5,
    "time_cursor_s": 4200.0,
    "cursor_advances": 37,
    "window_s": 60.0,
    "faults_active": 2,
    "counts": {"submitted": 100, "served": 80, "denied": 15, "shed": 5, "cancelled": 0},
    "rates_per_s": {"submitted": 10.0, "served": 8.0, "denied": 1.5, "shed": 0.5},
    "latency_s": {"p50": 0.0012, "p99": 0.0051, "mean": 0.0015, "window_count": 93},
    "queues": {"tenant-0": 3, "tenant-1": 0},
    "max_queue_depth": 7,
    "denial_causes": {"low_elevation": 12, "queue_full": 5},
    "denial_rates_per_s": {"low_elevation": 1.2},
    "slo": {
        "objectives": {
            "availability": {
                "state": "warning",
                "burn_short": 4.0,
                "burn_long": 3.0,
                "budget": 0.05,
            }
        }
    },
}


class TestRenderDashboard:
    def test_one_screen_layout(self):
        frame = render_dashboard(STATUS, url="http://x/status")
        assert "repro top - http://x/status" in frame
        assert "engine cached | kernels numpy" in frame
        assert "submitted 100  served 80  denied 15  shed 5" in frame
        assert "80.00 % of completed" in frame
        assert "rates (last 60 s)" in frame
        assert "p50 1.200 ms" in frame and "p99 5.100 ms" in frame
        assert "tenant-0" in frame and "tenant-1" in frame
        assert "low_elevation" in frame and "1.2/s" in frame
        assert "[WARN] availability" in frame
        assert "faults 2" in frame

    def test_empty_status_renders(self):
        frame = render_dashboard({})
        assert "repro top" in frame
        assert "0.00 % of completed" in frame

    def test_no_optional_sections_when_absent(self):
        frame = render_dashboard(
            {"counts": {"submitted": 1}, "rates_per_s": {}, "latency_s": {}}
        )
        assert "tenant queues" not in frame
        assert "denial causes" not in frame
        assert "slo" not in frame

    def test_nan_latency_renders_dash(self):
        frame = render_dashboard({"latency_s": {"p50": float("nan")}})
        assert "p50 -" in frame

    def test_served_bar_clamps(self):
        # A corrupt payload (served > completed) must not crash the bar.
        frame = render_dashboard(
            {"counts": {"submitted": 1, "served": 10, "denied": 0, "shed": 0}}
        )
        assert "100.00 %" in frame


class TestFetchStatus:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValidationError):
            fetch_status("file:///etc/passwd")

    def test_connection_refused_is_validation_error(self):
        with pytest.raises(ValidationError):
            fetch_status("http://127.0.0.1:1/status", timeout_s=0.5)


class TestRunTop:
    def test_first_poll_failure_exits_1(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:1/status", interval_s=0.01, iterations=1, stream=out
        )
        assert code == 1

    @pytest.mark.asyncio
    async def test_renders_live_server(self, small_ephemeris, telemetry):
        server = ServeServer(build_engine("cached", small_ephemeris))
        http = await ObservabilityServer(server).start()
        try:
            url = f"http://127.0.0.1:{http.port}/status"
            out = io.StringIO()
            # run_top blocks; one frame against the live endpoint. The
            # urllib fetch happens in a worker thread so the asyncio
            # listener on this loop can answer it.
            code = await asyncio.to_thread(
                run_top, url, interval_s=0.01, iterations=1, stream=out, clear=False
            )
            assert code == 0
            frame = out.getvalue()
            assert "engine cached" in frame
            assert "submitted 0" in frame
        finally:
            await http.close()

    @pytest.mark.asyncio
    async def test_clear_codes_emitted_when_enabled(self, small_ephemeris, telemetry):
        server = ServeServer(build_engine("cached", small_ephemeris))
        http = await ObservabilityServer(server).start()
        try:
            url = f"http://127.0.0.1:{http.port}/status"
            out = io.StringIO()
            await asyncio.to_thread(
                run_top, url, interval_s=0.01, iterations=1, stream=out, clear=True
            )
            assert out.getvalue().startswith("\x1b[2J\x1b[H")
        finally:
            await http.close()
