"""Property-based tests: random streams and fault schedules.

Hypothesis drives randomized request streams (seed, rate, tenant count)
and random fault schedules (reusing the chaos suite's event strategies)
through the differential invariants: streaming == batch per backend,
serving accounting covers the stream, and admission shedding is exact.
Engines are reused across examples where the schedule is fixed —
outcomes are pure functions of the request, so engine reuse is itself
part of the statelessness claim.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.workload import align_to_grid, poisson_request_stream
from repro.serve import ServeServer, ServerConfig, build_engine, outcomes_equal

from tests.faults.test_chaos import schedules
from tests.serve.conftest import HORIZON_S

PROPERTY_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
rates = st.floats(min_value=0.002, max_value=0.02)
tenant_counts = st.integers(min_value=1, max_value=3)


def make_stream(lans, times_s, seed, rate, n_tenants):
    tenants = tuple(f"tenant-{i}" for i in range(n_tenants))
    stream = poisson_request_stream(
        lans, rate_hz=rate, duration_s=HORIZON_S, seed=seed, tenants=tenants
    )
    return align_to_grid(stream, times_s)


def run_stream(engine, requests):
    server = ServeServer(
        engine,
        config=ServerConfig(queue_depth=len(requests) + 1, shed_on_full=False),
    )
    report = asyncio.run(server.run(requests))
    assert report.accounting_ok and report.n_shed == 0
    return list(report.outcomes)


@pytest.fixture(scope="module")
def cached_engine(small_ephemeris):
    return build_engine("cached", small_ephemeris)


@pytest.fixture(scope="module")
def matrix_engine(small_ephemeris):
    return build_engine("matrix", small_ephemeris)


@settings(max_examples=40, **PROPERTY_SETTINGS)
@given(seed=seeds, rate=rates, n_tenants=tenant_counts)
def test_stream_generator_invariants(lans, small_ephemeris, seed, rate, n_tenants):
    """IDs ascend, times sort onto the grid, endpoints cross LANs."""
    raw = poisson_request_stream(
        lans,
        rate_hz=rate,
        duration_s=HORIZON_S,
        seed=seed,
        tenants=tuple(f"tenant-{i}" for i in range(n_tenants)),
    )
    lan_of = {name: lan for lan, names in lans.items() for name in names}
    assert [r.request_id for r in raw] == list(range(len(raw)))
    assert all(0.0 < r.t_s < HORIZON_S for r in raw)
    assert all(a.t_s <= b.t_s for a, b in zip(raw, raw[1:]))
    assert all(lan_of[r.source] != lan_of[r.destination] for r in raw)
    assert all(r.tenant.startswith("tenant-") for r in raw)

    grid = small_ephemeris.times_s
    aligned = align_to_grid(raw, grid)
    grid_values = set(float(t) for t in grid)
    for before, after in zip(raw, aligned):
        assert after.request_id == before.request_id
        assert after.endpoints == before.endpoints
        assert after.t_s in grid_values
        assert after.t_s <= before.t_s


@settings(max_examples=8, **PROPERTY_SETTINGS)
@given(seed=seeds, rate=rates, n_tenants=tenant_counts)
def test_streaming_equals_batch_on_random_streams(
    cached_engine, matrix_engine, lans, small_ephemeris, seed, rate, n_tenants
):
    stream = make_stream(lans, small_ephemeris.times_s, seed, rate, n_tenants)
    if not stream:
        return
    for engine in (cached_engine, matrix_engine):
        streamed = run_stream(engine, stream)
        batched = engine.serve_batch(stream)
        assert len(streamed) == len(batched) == len(stream)
        for a, b in zip(streamed, batched):
            assert outcomes_equal(a, b), (engine.name, a, b)
    # Cross-backend: the serving decision itself is backend-independent.
    cached = cached_engine.serve_batch(stream)
    matrix = matrix_engine.serve_batch(stream)
    assert [o.served for o in cached] == [o.served for o in matrix]


@settings(max_examples=8, **PROPERTY_SETTINGS)
@given(schedule=schedules(), seed=seeds)
def test_fault_schedules_preserve_equivalence(
    lans, small_ephemeris, schedule, seed
):
    """Streaming == batch and accounting holds under any fault schedule."""
    stream = make_stream(lans, small_ephemeris.times_s, seed, 0.008, 2)
    if not stream:
        return
    engine = build_engine("cached", small_ephemeris, faults=schedule)
    streamed = run_stream(engine, stream)
    batched = engine.serve_batch(stream)
    for a, b in zip(streamed, batched):
        assert outcomes_equal(a, b), (a, b)
    n_served = sum(o.served for o in batched)
    causes = [o.cause for o in batched if not o.served]
    assert all(c is not None for c in causes)
    assert n_served + len(causes) == len(stream)


@settings(max_examples=25, **PROPERTY_SETTINGS)
@given(
    depth=st.integers(min_value=1, max_value=8),
    n=st.integers(min_value=0, max_value=20),
)
def test_shedding_is_exact(cached_engine, lans, small_ephemeris, depth, n):
    """With no consumer running, exactly max(n - depth, 0) requests shed."""
    stream = make_stream(lans, small_ephemeris.times_s, 23, 0.01, 1)[:n]

    async def scenario():
        server = ServeServer(cached_engine, config=ServerConfig(queue_depth=depth))
        shed = [o for r in stream if (o := await server.submit(r)) is not None]
        await server.abort()
        return shed, server.report()

    shed, report = asyncio.run(scenario())
    expected = max(len(stream) - depth, 0)
    assert len(shed) == expected
    assert report.n_shed == expected
    assert report.n_cancelled == min(len(stream), depth)
    assert report.accounting_ok
