"""The differential harness: streaming == batch, serial == sharded.

One timestamped request sequence is replayed through the asyncio
streaming front end and through each backend's batch path, and the
outcomes must be bit-identical per backend — with and without a
non-empty fault schedule. The batch side is additionally pinned against
the *raw* sweep APIs (``NetworkSimulator.serve_requests``,
``SpaceGroundAnalysis.serve``) so the comparison is not circular, and
the sharded replay must be independent of worker count.
"""

import asyncio
from itertools import groupby

import numpy as np
import pytest

from repro.serve import (
    ENGINE_KINDS,
    ServeServer,
    ServerConfig,
    build_engine,
    outcomes_equal,
    serve_stream_sharded,
)

FAULT_IDS = ["healthy", "faulted"]


@pytest.fixture(params=FAULT_IDS)
def faults(request, mixed_schedule):
    return mixed_schedule if request.param == "faulted" else None


def run_stream(engine, requests):
    """Replay through the asyncio front end in backpressure mode."""
    server = ServeServer(
        engine,
        config=ServerConfig(queue_depth=len(requests) + 1, shed_on_full=False),
    )
    report = asyncio.run(server.run(requests))
    assert report.accounting_ok
    assert report.n_shed == 0 and report.n_cancelled == 0
    assert report.n_served + report.n_denied == len(requests)
    return list(report.outcomes)


@pytest.mark.parametrize("kind", ENGINE_KINDS)
def test_streaming_bit_identical_to_batch(
    kind, faults, small_ephemeris, aligned_stream
):
    """Fresh engine per side: submit() and serve_batch() cannot drift."""
    streamed = run_stream(
        build_engine(kind, small_ephemeris, faults=faults), aligned_stream
    )
    batched = build_engine(kind, small_ephemeris, faults=faults).serve_batch(
        aligned_stream
    )
    assert len(streamed) == len(batched) == len(aligned_stream)
    for a, b in zip(streamed, batched):
        assert outcomes_equal(a, b), (a, b)


@pytest.mark.parametrize("kind", ["cached", "direct"])
def test_simulator_batch_is_the_raw_sweep(kind, small_ephemeris, aligned_stream):
    """serve_batch must be NetworkSimulator.serve_requests, nothing else."""
    engine = build_engine(kind, small_ephemeris)
    batched = engine.serve_batch(aligned_stream)
    raws = []
    for t_s, group in groupby(aligned_stream, key=lambda r: r.t_s):
        group = list(group)
        raws.extend(
            engine.simulator.serve_requests([r.endpoints for r in group], t_s)
        )
    assert len(batched) == len(raws)
    for outcome, raw in zip(batched, raws):
        assert outcome.served == raw.served
        assert outcome.path == raw.path
        assert outcome.path_eta == raw.path_transmissivity
        assert outcome.fidelity == raw.fidelity or (
            np.isnan(outcome.fidelity) and np.isnan(raw.fidelity)
        )


def test_matrix_batch_is_the_raw_sweep(small_ephemeris, aligned_stream):
    """serve_batch must reproduce SpaceGroundAnalysis.serve etas exactly."""
    engine = build_engine("matrix", small_ephemeris)
    batched = engine.serve_batch(aligned_stream)
    etas = []
    for t_s, group in groupby(aligned_stream, key=lambda r: r.t_s):
        group = list(group)
        k = int(np.searchsorted(engine.analysis.times_s, t_s, side="right") - 1)
        etas.extend(
            engine.analysis.serve([r.endpoints for r in group], k, engine.epsilon)
        )
    assert len(batched) == len(etas)
    for outcome, eta in zip(batched, etas):
        if eta is None:
            assert not outcome.served and outcome.path_eta == 0.0
        else:
            assert outcome.served and outcome.path_eta == eta


def test_backends_agree_on_service(faults, small_ephemeris, aligned_stream):
    """All three paths serve the same requests with the same causes."""
    by_kind = {
        kind: build_engine(kind, small_ephemeris, faults=faults).serve_batch(
            aligned_stream
        )
        for kind in ENGINE_KINDS
    }
    cached = by_kind["cached"]
    # Under per-site fades the two-hop matrix model and the object-level
    # simulator may legitimately diverge (DESIGN.md §11); the matrix leg
    # of the cross-backend contract is healthy-only.
    others = ("direct",) if faults is not None else ("direct", "matrix")
    for kind in others:
        for a, b in zip(cached, by_kind[kind]):
            assert a.served == b.served, (kind, a, b)
            assert a.cause == b.cause, (kind, a, b)
            if a.served:
                # Bit-identity is a per-backend guarantee (streaming vs
                # batch); across backends the float op ordering differs
                # (vectorized vs scalar), so compare to round-off.
                assert np.isclose(a.path_eta, b.path_eta, rtol=1e-9, atol=0.0)
                assert np.isclose(a.fidelity, b.fidelity, rtol=1e-9, atol=0.0)


@pytest.fixture(scope="module")
def serial_outcomes(small_ephemeris, aligned_stream):
    return serve_stream_sharded(
        small_ephemeris, aligned_stream, engine="cached", n_workers=0
    )


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_serial_equals_sharded(
    n_workers, serial_outcomes, small_ephemeris, aligned_stream
):
    sharded = serve_stream_sharded(
        small_ephemeris, aligned_stream, engine="cached", n_workers=n_workers
    )
    assert len(sharded) == len(serial_outcomes) == len(aligned_stream)
    for a, b in zip(serial_outcomes, sharded):
        assert outcomes_equal(a, b), (a, b)


def test_serial_equals_sharded_under_faults(
    mixed_schedule, small_ephemeris, aligned_stream
):
    serial = serve_stream_sharded(
        small_ephemeris,
        aligned_stream,
        engine="cached",
        n_workers=0,
        faults=mixed_schedule,
    )
    sharded = serve_stream_sharded(
        small_ephemeris,
        aligned_stream,
        engine="cached",
        n_workers=2,
        faults=mixed_schedule,
    )
    for a, b in zip(serial, sharded):
        assert outcomes_equal(a, b), (a, b)
    # The outage must actually bite: some healthy-served request is lost.
    healthy = serve_stream_sharded(
        small_ephemeris, aligned_stream, engine="cached", n_workers=0
    )
    assert sum(o.served for o in serial) < sum(o.served for o in healthy)


def test_sharded_matches_batch_per_backend(small_ephemeris, aligned_stream):
    """The sharded replay is the same physics as serve_batch for every kind."""
    for kind in ENGINE_KINDS:
        batched = build_engine(kind, small_ephemeris).serve_batch(aligned_stream)
        sharded = serve_stream_sharded(
            small_ephemeris, aligned_stream, engine=kind, n_workers=0
        )
        for a, b in zip(batched, sharded):
            assert outcomes_equal(a, b), (kind, a, b)


def test_accounting_covers_stream(faults, small_ephemeris, aligned_stream):
    """served + per-cause denials == total, for every backend."""
    for kind in ENGINE_KINDS:
        outcomes = build_engine(kind, small_ephemeris, faults=faults).serve_batch(
            aligned_stream
        )
        n_served = sum(o.served for o in outcomes)
        causes = [o.cause for o in outcomes if not o.served]
        assert all(c is not None for c in causes)
        assert n_served + len(causes) == len(aligned_stream)
