"""Windowed (incremental-advance) serving vs the eager full-day engines.

``build_engine(..., window=N)`` must change *when* link physics is
computed, never *what* is computed: a windowed engine replaying a
time-ordered stream yields outcomes bit-identical to the eager engine's
batch path, per backend, with and without faults, serial and sharded.
Also pins the phase-span attribution satellite: a profiled windowed run
records time under propagate / budget / route / serve.
"""

import pytest

from repro.serve import build_engine, outcomes_equal
from repro.serve.sharded import serve_stream_sharded

WINDOWED_KINDS = ("cached", "matrix")  # direct has no precomputed state


class TestWindowedEquivalence:
    @pytest.mark.parametrize("kind", WINDOWED_KINDS)
    @pytest.mark.parametrize("window", [1, 16, 500])
    def test_streaming_matches_eager_batch(
        self, kind, window, small_ephemeris, aligned_stream
    ):
        eager = build_engine(kind, small_ephemeris)
        windowed = build_engine(kind, small_ephemeris, window=window)
        reference = eager.serve_batch(aligned_stream)
        streamed = []
        for request in aligned_stream:
            windowed.advance_to(request.t_s)
            streamed.append(windowed.submit(request))
        assert len(streamed) == len(reference)
        for a, b in zip(streamed, reference):
            assert outcomes_equal(a, b)

    @pytest.mark.parametrize("kind", WINDOWED_KINDS)
    def test_windowed_with_faults_matches_eager(
        self, kind, small_ephemeris, aligned_stream, mixed_schedule
    ):
        eager = build_engine(kind, small_ephemeris, faults=mixed_schedule)
        windowed = build_engine(
            kind, small_ephemeris, faults=mixed_schedule, window=8
        )
        reference = eager.serve_batch(aligned_stream)
        streamed = [windowed.submit(r) for r in aligned_stream]
        for a, b in zip(streamed, reference):
            assert outcomes_equal(a, b)

    def test_windowed_cached_is_lazy(self, small_ephemeris, aligned_stream):
        engine = build_engine("cached", small_ephemeris, window=8)
        early = [r for r in aligned_stream if r.t_s < 600.0][:3]
        assert early, "fixture stream should start within the first samples"
        for request in early:
            engine.advance_to(request.t_s)
            engine.submit(request)
        linkstate = engine.simulator.linkstate
        assert 0 < linkstate._built_upto < linkstate.n_times

    def test_sharded_windowed_matches_serial_eager(
        self, small_ephemeris, aligned_stream
    ):
        reference = serve_stream_sharded(
            small_ephemeris, aligned_stream, engine="cached", n_workers=0
        )
        windowed = serve_stream_sharded(
            small_ephemeris, aligned_stream, engine="cached", n_workers=0, window=8
        )
        assert len(windowed) == len(reference)
        for a, b in zip(windowed, reference):
            assert outcomes_equal(a, b)


class TestKernelBackendTelemetry:
    def test_engines_report_active_backend(self, small_ephemeris):
        from repro import kernels

        for kind in ("cached", "direct", "matrix"):
            engine = build_engine(kind, small_ephemeris)
            assert engine.kernel_backend == kernels.active_backend()
            assert engine.kernel_backend in ("numpy", "numba")


class TestPhaseSpans:
    def test_windowed_stream_attributes_phases(
        self, small_ephemeris, aligned_stream, telemetry
    ):
        engine = build_engine("cached", small_ephemeris, window=8)
        for request in aligned_stream:
            engine.advance_to(request.t_s)
            engine.submit(request)
        paths = telemetry.profile().stats()
        assert "propagate" in paths
        assert "serve" in paths
        assert "serve/budget" in paths  # windowed fill, inside the serve span
        assert "serve/route" in paths
        assert paths["serve"].count == len(aligned_stream)

    def test_matrix_windowed_attributes_budget_to_advance(
        self, small_ephemeris, aligned_stream, telemetry
    ):
        engine = build_engine("matrix", small_ephemeris, window=8)
        for request in aligned_stream:
            engine.advance_to(request.t_s)
            engine.submit(request)
        paths = telemetry.profile().stats()
        assert "propagate" in paths
        assert "propagate/budget" in paths  # fills ride the cursor advance
        assert "serve" in paths
