"""Unit tests for the :class:`ServeEngine` backends.

Covers construction, outcome shape and identity preservation, denial
attribution on/off, the monotonic time cursors (matrix engine and
:meth:`LinkStateCache.advance_index`) against the plain bisection rule,
and :func:`outcomes_equal` semantics.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs.trace import CAUSES
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.serve import ENGINE_KINDS, ServeOutcome, build_engine, outcomes_equal


@pytest.fixture(scope="module", params=ENGINE_KINDS)
def engine(request, small_ephemeris):
    return build_engine(request.param, small_ephemeris)


class TestBuildEngine:
    def test_unknown_kind_rejected(self, small_ephemeris):
        with pytest.raises(ValidationError):
            build_engine("warp", small_ephemeris)

    def test_name_matches_kind(self, engine):
        assert engine.name in ENGINE_KINDS

    def test_kinds_are_distinct(self, small_ephemeris):
        names = {build_engine(k, small_ephemeris).name for k in ENGINE_KINDS}
        assert names == set(ENGINE_KINDS)


class TestSubmit:
    def test_identity_preserved(self, engine, aligned_stream):
        request = aligned_stream[0]
        outcome = engine.submit(request)
        assert outcome.request_id == request.request_id
        assert outcome.source == request.source
        assert outcome.destination == request.destination
        assert outcome.t_s == request.t_s
        assert outcome.tenant == request.tenant

    def test_served_outcome_is_consistent(self, engine, aligned_stream):
        served = [o for o in map(engine.submit, aligned_stream) if o.served]
        assert served, "fixture stream should include at least one served request"
        for outcome in served:
            assert outcome.path[0] == outcome.source
            assert outcome.path[-1] == outcome.destination
            assert len(outcome.path) >= 3
            assert 0.0 < outcome.path_eta <= 1.0
            expected = float(
                entanglement_fidelity_from_transmissivity(outcome.path_eta)
            )
            assert outcome.fidelity == expected
            assert outcome.cause is None

    def test_denied_outcome_carries_canonical_cause(self, engine, aligned_stream):
        causes = set(CAUSES)
        denied = [o for o in map(engine.submit, aligned_stream) if not o.served]
        assert denied, "fixture stream should include at least one denial"
        for outcome in denied:
            assert outcome.path == ()
            assert outcome.path_eta == 0.0
            assert math.isnan(outcome.fidelity)
            assert outcome.cause in causes

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_attribution_off_leaves_cause_none(
        self, kind, small_ephemeris, aligned_stream
    ):
        engine = build_engine(kind, small_ephemeris, attribute_denials=False)
        denied = [o for o in map(engine.submit, aligned_stream) if not o.served]
        assert denied
        assert all(o.cause is None for o in denied)


class TestTimeCursor:
    """Monotonic cursors must match the plain most-recent-sample rule."""

    def _reference(self, times, t_s):
        idx = int(np.searchsorted(times, t_s, side="right") - 1)
        return min(max(idx, 0), times.size - 1)

    def _query_times(self, times, rng):
        forward = np.sort(rng.uniform(-30.0, times[-1] + 120.0, size=200))
        backtrack = rng.uniform(0.0, times[-1], size=50)
        return np.concatenate([forward, backtrack])

    def test_matrix_cursor_matches_bisection(self, small_ephemeris):
        engine = build_engine("matrix", small_ephemeris)
        times = engine.analysis.times_s
        rng = np.random.default_rng(5)
        for t in self._query_times(times, rng):
            assert engine.time_index(float(t)) == self._reference(times, float(t))

    def test_linkstate_cursor_matches_time_index(self, small_ephemeris):
        engine = build_engine("cached", small_ephemeris)
        linkstate = engine.simulator.linkstate
        times = linkstate.times_s
        rng = np.random.default_rng(6)
        for t in self._query_times(times, rng):
            assert linkstate.advance_index(float(t)) == linkstate.time_index(float(t))


class TestServeBatch:
    def test_batch_equals_per_request_submit(self, engine, aligned_stream):
        batched = engine.serve_batch(aligned_stream)
        singles = [engine.submit(r) for r in aligned_stream]
        assert len(batched) == len(singles)
        for a, b in zip(batched, singles):
            assert outcomes_equal(a, b)

    def test_groups_consecutive_equal_timestamps(self, small_ephemeris, aligned_stream):
        engine = build_engine("matrix", small_ephemeris)
        calls = []
        original = engine._serve_group

        def spy(t_s, group):
            calls.append((t_s, len(group)))
            return original(t_s, group)

        engine._serve_group = spy
        engine.serve_batch(aligned_stream)
        assert sum(n for _, n in calls) == len(aligned_stream)
        assert [t for t, _ in calls] == sorted({r.t_s for r in aligned_stream})


class TestOutcomesEqual:
    def _outcome(self, **overrides):
        base = dict(
            request_id=0,
            source="ttu-0",
            destination="ornl-10",
            t_s=60.0,
            tenant="default",
            served=True,
            path=("ttu-0", "sat-004", "ornl-10"),
            path_eta=1e-3,
            fidelity=0.95,
            cause=None,
        )
        base.update(overrides)
        return ServeOutcome(**base)

    def test_identical(self):
        assert outcomes_equal(self._outcome(), self._outcome())

    def test_nan_fidelity_is_equal(self):
        a = self._outcome(served=False, path=(), path_eta=0.0, fidelity=float("nan"))
        b = dataclasses.replace(a)
        assert outcomes_equal(a, b)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("path_eta", 2e-3),
            ("fidelity", 0.96),
            ("served", False),
            ("cause", "low_elevation"),
            ("path", ("ttu-0", "sat-001", "ornl-10")),
            ("tenant", "other"),
        ],
    )
    def test_any_field_difference_detected(self, field, value):
        assert not outcomes_equal(self._outcome(), self._outcome(**{field: value}))
