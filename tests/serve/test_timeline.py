"""Causal timeline tracing across the serve plane.

Pins the determinism contract of :mod:`repro.obs.events` end to end:
for a fixed seed, the set of trace-anchored events — ``(trace_id, span
path, attrs)`` tuples — is identical for a serial replay and any worker
count (the shard merge aligns each worker's monotonic clock onto the
parent's), outcomes are byte-identical, every request owns exactly one
root span, and timestamps stay causal (children inside their root's
interval) after alignment. A ``queue_full`` shed produces a complete
short trace carrying the denial cause.
"""

from __future__ import annotations

import pytest

from repro.obs import events
from repro.serve.engine import build_engine, outcomes_equal
from repro.serve.server import ServeServer, ServerConfig
from repro.serve.sharded import serve_stream_sharded

WORKER_COUNTS = (0, 1, 2, 4)


def _trace_tuples(records):
    """Worker-count-invariant view: trace-anchored events only."""
    out = set()
    for r in records:
        if "trace" not in r:
            continue
        attrs = r.get("attrs") or {}
        out.add((r["trace"], r["path"], tuple(sorted(attrs.items()))))
    return out


@pytest.fixture(scope="module")
def replays(small_ephemeris, aligned_stream):
    """The same stream replayed at every worker count, timeline on."""
    runs = {}
    for n_workers in WORKER_COUNTS:
        rec = events.start(ring_size=65_536)
        try:
            outcomes = serve_stream_sharded(
                small_ephemeris, aligned_stream, n_workers=n_workers
            )
            runs[n_workers] = (outcomes, rec.records())
        finally:
            events.reset()
    return runs


def test_trace_tuples_invariant_across_worker_counts(replays, aligned_stream):
    serial_tuples = _trace_tuples(replays[0][1])
    assert len(serial_tuples) >= 3 * len(aligned_stream)
    for n_workers in WORKER_COUNTS[1:]:
        assert _trace_tuples(replays[n_workers][1]) == serial_tuples, (
            f"trace tuples diverged at n_workers={n_workers}"
        )


def test_outcomes_unchanged_by_timeline_and_workers(
    replays, small_ephemeris, aligned_stream
):
    # Timeline recording must not perturb outcomes...
    baseline = serve_stream_sharded(small_ephemeris, aligned_stream, n_workers=0)
    serial = replays[0][0]
    assert len(serial) == len(baseline)
    assert all(outcomes_equal(a, b) for a, b in zip(serial, baseline))
    # ...and neither may the worker count.
    for n_workers in WORKER_COUNTS[1:]:
        outcomes = replays[n_workers][0]
        assert len(outcomes) == len(serial)
        assert all(outcomes_equal(a, b) for a, b in zip(outcomes, serial))


def test_exactly_one_root_per_request(replays, aligned_stream):
    expected_ids = {f"req-{r.request_id}" for r in aligned_stream}
    for n_workers, (_, records) in replays.items():
        roots = [
            r for r in records if "trace" in r and r.get("parent") is None
        ]
        assert len(roots) == len(aligned_stream), f"n_workers={n_workers}"
        assert {r["trace"] for r in roots} == expected_ids
        for root in roots:
            assert root["name"] == "request"
            assert "tenant" in root["attrs"] and "served" in root["attrs"]


def test_timestamps_causal_after_alignment(replays):
    for n_workers, (_, records) in replays.items():
        assert all(int(r["dur"]) >= 0 for r in records), f"n_workers={n_workers}"
        traces = {}
        for r in records:
            if "trace" in r:
                traces.setdefault(r["trace"], []).append(r)
        for trace_id, recs in traces.items():
            root = next(r for r in recs if r.get("parent") is None)
            t0, t1 = int(root["ts"]), int(root["ts"]) + int(root["dur"])
            for r in recs:
                assert t0 <= int(r["ts"]), (n_workers, trace_id)
                assert int(r["ts"]) + int(r["dur"]) <= t1, (n_workers, trace_id)
            # Each trace is recorded wholly in one process.
            assert len({r["shard"] for r in recs}) == 1


def test_worker_events_carry_shard_ids(replays):
    pooled_records = replays[2][1]
    shards = {r["shard"] for r in pooled_records if "trace" in r}
    assert len(shards) == 2
    assert 0 not in shards  # pooled traces are recorded in workers
    dispatches = [
        r for r in pooled_records if r["name"] == "dispatch" and "trace" not in r
    ]
    assert {r["attrs"]["shard"] for r in dispatches} == shards


def test_chrome_export_of_merged_timeline(replays):
    doc = events.to_chrome_trace(replays[4][1])
    span_events = [e for e in doc["traceEvents"] if e["cat"] == "span"]
    assert span_events
    open_spans = {}
    last_ts = {}
    for e in span_events:
        key = (e["pid"], e["tid"])
        assert e["ts"] >= last_ts.get(key, 0)
        last_ts[key] = e["ts"]
        stack = open_spans.setdefault(key, [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            assert stack and stack[-1] == e["name"]
            stack.pop()
    assert all(not stack for stack in open_spans.values())


@pytest.mark.asyncio
async def test_queue_full_shed_traces_are_complete(small_ephemeris, solo_stream):
    """A shed request still yields a complete (short) trace: its root
    closes immediately with the denial cause, no queue/serve children."""
    first, second, *_ = solo_stream
    engine = build_engine("cached", small_ephemeris)
    server = ServeServer(
        engine, config=ServerConfig(queue_depth=1, shed_on_full=True)
    )
    rec = events.start(ring_size=4096)
    try:
        # No consumer running yet: the first request fills the queue,
        # the second sheds deterministically.
        assert await server.submit(first) is None
        shed = await server.submit(second)
        assert shed is not None and shed.cause == "queue_full"
        server.start()
        await server.drain()
        records = rec.records()
    finally:
        events.reset()

    shed_trace = [r for r in records if r.get("trace") == f"req-{second.request_id}"]
    assert len(shed_trace) == 1  # root only — shed before any child span
    (root,) = shed_trace
    assert root.get("parent") is None
    assert root["attrs"]["served"] is False
    assert root["attrs"]["cause"] == "queue_full"
    assert root["attrs"]["tenant"] == second.tenant

    served_trace = [r for r in records if r.get("trace") == f"req-{first.request_id}"]
    names = {r["name"] for r in served_trace}
    assert {"request", "queue", "serve"} <= names


@pytest.mark.asyncio
async def test_shed_trace_shape_matches_serial_rerun(small_ephemeris, solo_stream):
    """Back-to-back shed runs in one process produce identical trace
    tuples — nothing leaks from the first recorder into the second."""
    first, second, *_ = solo_stream

    async def _run_once():
        engine = build_engine("cached", small_ephemeris)
        server = ServeServer(
            engine, config=ServerConfig(queue_depth=1, shed_on_full=True)
        )
        rec = events.start(ring_size=4096)
        try:
            await server.submit(first)
            await server.submit(second)
            server.start()
            await server.drain()
            return _trace_tuples(rec.records())
        finally:
            events.reset()

    assert await _run_once() == await _run_once()
    assert events.active() is None
