"""Shared fixtures: small, fast scenario objects reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.network.hap import HAP
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for stochastic tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_ephemeris():
    """A 12-satellite, 2-hour movement sheet at 60 s cadence (fast)."""
    return generate_movement_sheet(qntn_constellation(12), duration_s=7200.0, step_s=60.0)


@pytest.fixture(scope="session")
def day_ephemeris_36():
    """A 36-satellite, 1-day movement sheet at 120 s cadence."""
    return generate_movement_sheet(qntn_constellation(36), duration_s=86400.0, step_s=120.0)


@pytest.fixture(scope="session")
def sites():
    """All 31 Table I ground nodes."""
    return list(all_ground_nodes())


@pytest.fixture(scope="session")
def hap_simulator() -> NetworkSimulator:
    """Object-level simulator of the air-ground architecture."""
    network = build_qntn_ground_network()
    attach_hap(network, HAP(), paper_hap_fso())
    return NetworkSimulator(network)


@pytest.fixture(scope="session")
def sat_simulator_small(small_ephemeris) -> NetworkSimulator:
    """Object-level simulator over the small 12-satellite constellation."""
    network = build_qntn_ground_network()
    attach_satellites(network, small_ephemeris, paper_satellite_fso())
    return NetworkSimulator(network)


@pytest.fixture(scope="session")
def sat_analysis_small(small_ephemeris) -> SpaceGroundAnalysis:
    """Vectorized analysis over the small constellation."""
    return SpaceGroundAnalysis(
        small_ephemeris, list(all_ground_nodes()), paper_satellite_fso()
    )
