"""Unit and property tests for the FSO channel model (paper Eq. 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.atmosphere import ExponentialAtmosphere
from repro.channels.fso import FSOChannelModel, calibrate_beam_waist
from repro.errors import ChannelError, ValidationError


def vacuum_model(**kwargs):
    defaults = dict(wavelength_m=810e-9, beam_waist_m=0.3, rx_aperture_radius_m=0.6)
    defaults.update(kwargs)
    return FSOChannelModel(**defaults)


def atmo_model(**kwargs):
    defaults = dict(
        wavelength_m=810e-9,
        beam_waist_m=0.3,
        rx_aperture_radius_m=0.6,
        atmosphere=ExponentialAtmosphere(),
        turbulence=True,
        uplink=False,
    )
    defaults.update(kwargs)
    return FSOChannelModel(**defaults)


class TestBeamGeometry:
    def test_rayleigh_range(self):
        m = vacuum_model(beam_waist_m=0.3, wavelength_m=810e-9)
        assert m.rayleigh_range_m == pytest.approx(math.pi * 0.09 / 810e-9)

    def test_spot_at_origin_is_waist(self):
        m = vacuum_model()
        assert float(m.diffraction_spot_m(0.0)) == pytest.approx(m.beam_waist_m)

    def test_spot_sqrt2_at_rayleigh_range(self):
        m = vacuum_model()
        zr_km = m.rayleigh_range_m / 1000.0
        assert float(m.diffraction_spot_m(zr_km)) == pytest.approx(
            m.beam_waist_m * math.sqrt(2.0)
        )

    def test_far_field_linear_divergence(self):
        m = vacuum_model()
        w1 = float(m.diffraction_spot_m(50000.0))
        w2 = float(m.diffraction_spot_m(100000.0))
        assert w2 / w1 == pytest.approx(2.0, rel=1e-3)

    def test_rejects_negative_range(self):
        with pytest.raises(ValidationError):
            vacuum_model().diffraction_spot_m(-1.0)


class TestEtaCapture:
    def test_decreases_with_range(self):
        m = vacuum_model()
        etas = m.eta_capture(np.array([100.0, 500.0, 2000.0]))
        assert etas[0] > etas[1] > etas[2]

    def test_bounded_unit_interval(self):
        m = vacuum_model()
        etas = m.eta_capture(np.linspace(0.1, 5000, 50))
        assert np.all((etas > 0) & (etas <= 1))

    def test_bigger_aperture_catches_more(self):
        small = vacuum_model(rx_aperture_radius_m=0.15)
        big = vacuum_model(rx_aperture_radius_m=0.6)
        assert float(big.eta_capture(500.0)) > float(small.eta_capture(500.0))

    def test_pointing_jitter_reduces_eta(self):
        steady = vacuum_model()
        shaky = vacuum_model(pointing_jitter_rad=2e-6)
        assert float(shaky.eta_capture(500.0)) < float(steady.eta_capture(500.0))


class TestTurbulence:
    def test_turbulent_spot_wider(self):
        m = atmo_model(uplink=True)  # uplink makes the effect pronounced
        w_plain = float(m.diffraction_spot_m(800.0))
        w_eff = float(m.effective_spot_m(800.0, math.radians(30.0), 500.0))
        assert w_eff > w_plain

    def test_downlink_spread_small(self):
        m = atmo_model(uplink=False)
        w_plain = float(m.diffraction_spot_m(800.0))
        w_eff = float(m.effective_spot_m(800.0, math.radians(45.0), 500.0))
        assert w_eff < 1.5 * w_plain

    def test_uplink_worse_than_downlink(self):
        up = atmo_model(uplink=True)
        down = atmo_model(uplink=False)
        el = math.radians(40.0)
        assert float(up.transmissivity(700.0, el, 500.0)) < float(
            down.transmissivity(700.0, el, 500.0)
        )

    def test_requires_elevation_when_turbulent(self):
        with pytest.raises(ChannelError):
            atmo_model().effective_spot_m(700.0)


class TestTransmissivity:
    def test_vacuum_ignores_elevation(self):
        m = vacuum_model()
        assert float(np.asarray(m.transmissivity(1000.0))) == pytest.approx(
            float(np.asarray(m.transmissivity(1000.0, 0.5, 500.0)))
        )

    def test_product_structure(self):
        """eta = eta_th * eta_atm * eta_eff exactly (paper Eq. 2)."""
        m = atmo_model(receiver_efficiency=0.9)
        comp = m.transmissivity_components(800.0, math.radians(35.0), 500.0)
        assert comp["eta"] == pytest.approx(
            comp["eta_th"] * comp["eta_atm"] * comp["eta_eff"], rel=1e-12
        )

    def test_atmospheric_model_requires_geometry(self):
        with pytest.raises(ChannelError):
            atmo_model().transmissivity(800.0)

    def test_increases_with_elevation_at_fixed_slant_structure(self):
        """Along the real orbit geometry higher elevation => higher eta."""
        m = atmo_model()
        re, h = 6371.0, 500.0

        def slant(el):
            s = re * math.sin(el)
            return math.sqrt(s * s + 2 * re * h + h * h) - s

        els = np.radians([20.0, 40.0, 60.0, 85.0])
        etas = [float(np.asarray(m.transmissivity(slant(e), e, h))) for e in els]
        assert all(a < b for a, b in zip(etas, etas[1:]))

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=10.0, max_value=3000.0),
        st.floats(min_value=0.1, max_value=math.pi / 2),
    )
    def test_property_eta_in_unit_interval(self, slant, elev):
        m = atmo_model()
        eta = float(np.asarray(m.transmissivity(slant, elev, 500.0)))
        assert 0.0 <= eta <= 1.0

    def test_vectorized_matches_scalar(self):
        m = atmo_model()
        slants = np.array([600.0, 900.0, 1200.0])
        els = np.radians([60.0, 35.0, 22.0])
        vec = np.asarray(m.transmissivity(slants, els, 500.0))
        scalars = [float(np.asarray(m.transmissivity(s, e, 500.0))) for s, e in zip(slants, els)]
        np.testing.assert_allclose(vec, scalars, rtol=1e-12)


class TestCalibrateBeamWaist:
    def test_hits_target_eta(self):
        atm = ExponentialAtmosphere()
        w0 = calibrate_beam_waist(
            0.7,
            1060.5,
            math.radians(24.0),
            500.0,
            wavelength_m=532e-9,
            rx_aperture_radius_m=0.6,
            receiver_efficiency=0.98,
            atmosphere=atm,
            turbulence=True,
            uplink=False,
        )
        model = FSOChannelModel(
            wavelength_m=532e-9,
            beam_waist_m=w0,
            rx_aperture_radius_m=0.6,
            receiver_efficiency=0.98,
            atmosphere=atm,
            turbulence=True,
            uplink=False,
        )
        eta = float(np.asarray(model.transmissivity(1060.5, math.radians(24.0), 500.0)))
        assert eta == pytest.approx(0.7, abs=2e-3)

    def test_unreachable_target_raises(self):
        with pytest.raises(ChannelError):
            calibrate_beam_waist(
                0.99,
                5000.0,
                0.5,
                500.0,
                rx_aperture_radius_m=0.05,
                waist_bounds_m=(0.01, 0.2),
            )

    def test_rejects_bad_target(self):
        with pytest.raises(ValidationError):
            calibrate_beam_waist(1.5, 100.0, 0.5, 500.0)


class TestValidation:
    def test_rejects_bad_waist(self):
        with pytest.raises(ValidationError):
            FSOChannelModel(beam_waist_m=0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValidationError):
            FSOChannelModel(receiver_efficiency=1.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValidationError):
            FSOChannelModel(pointing_jitter_rad=-1e-6)
