"""Unit tests for atmospheric extinction, turbulence, and weather models."""

import math

import numpy as np
import pytest

from repro.channels.atmosphere import (
    ExponentialAtmosphere,
    WeatherCondition,
    WeatherModel,
    hufnagel_valley_cn2,
    rytov_variance_slant,
    spherical_coherence_length,
)
from repro.errors import ValidationError


class TestExponentialAtmosphere:
    def test_zenith_depth_saturates_with_altitude(self):
        atm = ExponentialAtmosphere(beta0_per_km=1e-3, scale_height_km=6.6)
        tau_leo = atm.zenith_optical_depth(500.0)
        tau_total = atm.beta0_per_km * atm.scale_height_km
        assert tau_leo == pytest.approx(tau_total, rel=1e-6)

    def test_hap_depth_nearly_full_atmosphere(self):
        atm = ExponentialAtmosphere()
        assert atm.zenith_optical_depth(30.0) == pytest.approx(
            atm.zenith_optical_depth(500.0), rel=0.02
        )

    def test_depth_decreases_with_elevation(self):
        atm = ExponentialAtmosphere()
        taus = atm.optical_depth(np.radians([20.0, 45.0, 90.0]), 500.0)
        assert taus[0] > taus[1] > taus[2]

    def test_secant_law(self):
        atm = ExponentialAtmosphere()
        tau_30 = float(atm.optical_depth(math.radians(30.0), 500.0))
        tau_90 = float(atm.optical_depth(math.radians(90.0), 500.0))
        assert tau_30 == pytest.approx(2.0 * tau_90, rel=1e-9)

    def test_transmissivity_is_exp_of_depth(self):
        atm = ExponentialAtmosphere()
        el = math.radians(40.0)
        assert float(atm.transmissivity(el, 500.0)) == pytest.approx(
            math.exp(-float(atm.optical_depth(el, 500.0)))
        )

    def test_elevated_ground_site_sees_less_atmosphere(self):
        atm = ExponentialAtmosphere()
        low = float(atm.transmissivity(1.0, 500.0, ground_altitude_km=0.0))
        high = float(atm.transmissivity(1.0, 500.0, ground_altitude_km=3.0))
        assert high > low

    def test_rejects_zero_elevation(self):
        with pytest.raises(ValidationError):
            ExponentialAtmosphere().optical_depth(0.0, 500.0)

    def test_rejects_negative_altitude(self):
        with pytest.raises(ValidationError):
            ExponentialAtmosphere().zenith_optical_depth(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            ExponentialAtmosphere(beta0_per_km=0.0)


class TestHufnagelValley:
    def test_ground_value_dominated_by_surface_term(self):
        assert float(hufnagel_valley_cn2(0.0)) == pytest.approx(1.7e-14 + 2.7e-16, rel=1e-3)

    def test_decays_with_altitude(self):
        cn2 = hufnagel_valley_cn2(np.array([0.0, 1000.0, 10000.0, 30000.0]))
        assert cn2[0] > cn2[1] > cn2[3]

    def test_tropopause_bump(self):
        """The (h/1e5)^10 wind term peaks near 10 km."""
        cn2_10k = float(hufnagel_valley_cn2(10000.0))
        cn2_5k = float(hufnagel_valley_cn2(5000.0))
        assert cn2_10k > cn2_5k

    def test_negligible_above_30km(self):
        assert float(hufnagel_valley_cn2(30000.0)) < 1e-18

    def test_rejects_negative_altitude(self):
        with pytest.raises(ValidationError):
            hufnagel_valley_cn2(-1.0)


class TestCoherenceLength:
    def test_uplink_much_worse_than_downlink(self):
        """Ground turbulence spreads an uplink beam but not a downlink one."""
        up = spherical_coherence_length(810e-9, math.radians(45.0), 500.0, uplink=True)
        down = spherical_coherence_length(810e-9, math.radians(45.0), 500.0, uplink=False)
        assert up < down / 5.0

    def test_lower_elevation_smaller_coherence(self):
        hi = spherical_coherence_length(810e-9, math.radians(60.0), 500.0, uplink=True)
        lo = spherical_coherence_length(810e-9, math.radians(20.0), 500.0, uplink=True)
        assert lo < hi

    def test_uplink_magnitude_centimetres(self):
        rho0 = spherical_coherence_length(810e-9, math.radians(45.0), 500.0, uplink=True)
        assert 0.005 < rho0 < 0.5

    def test_cn2_scale_weakens_coherence(self):
        base = spherical_coherence_length(810e-9, 0.8, 500.0, uplink=True)
        stormy = spherical_coherence_length(810e-9, 0.8, 500.0, uplink=True, cn2_scale=10.0)
        assert stormy < base

    def test_rejects_bad_elevation(self):
        with pytest.raises(ValidationError):
            spherical_coherence_length(810e-9, 0.0, 500.0)


class TestRytovVariance:
    def test_weak_turbulence_at_high_elevation(self):
        sigma2 = rytov_variance_slant(810e-9, math.radians(80.0), 500.0)
        assert 0.0 < sigma2 < 1.0

    def test_grows_toward_horizon(self):
        hi = rytov_variance_slant(810e-9, math.radians(70.0), 500.0)
        lo = rytov_variance_slant(810e-9, math.radians(20.0), 500.0)
        assert lo > hi

    def test_shorter_wavelength_stronger_scintillation(self):
        green = rytov_variance_slant(532e-9, 0.8, 500.0)
        ir = rytov_variance_slant(1550e-9, 0.8, 500.0)
        assert green > ir


class TestWeatherModel:
    def test_default_probabilities_sum_to_one(self):
        WeatherModel()  # must not raise

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValidationError):
            WeatherModel({WeatherCondition.CLEAR: 0.5})

    def test_sampling_respects_support(self, rng):
        model = WeatherModel({WeatherCondition.CLEAR: 1.0})
        assert all(model.sample(rng) is WeatherCondition.CLEAR for _ in range(10))

    def test_sampling_deterministic_with_seed(self):
        model = WeatherModel()
        a = [model.sample(np.random.default_rng(3)) for _ in range(5)]
        b = [model.sample(np.random.default_rng(3)) for _ in range(5)]
        assert a == b

    def test_extinction_ordering(self):
        assert (
            WeatherModel.extinction_multiplier(WeatherCondition.CLEAR)
            < WeatherModel.extinction_multiplier(WeatherCondition.HAZE)
            < WeatherModel.extinction_multiplier(WeatherCondition.FOG)
        )

    def test_perturbed_atmosphere_scales_beta(self):
        base = ExponentialAtmosphere(beta0_per_km=1e-3)
        fog = WeatherModel().perturbed_atmosphere(base, WeatherCondition.FOG)
        assert fog.beta0_per_km == pytest.approx(0.6)
        assert fog.scale_height_km == base.scale_height_km

    def test_fog_kills_hap_link(self):
        """Under fog even a 30 km vertical path is opaque enough to matter."""
        base = ExponentialAtmosphere(beta0_per_km=1e-3)
        fog = WeatherModel().perturbed_atmosphere(base, WeatherCondition.FOG)
        eta = float(fog.transmissivity(math.radians(23.0), 30.0))
        assert eta < 0.01
