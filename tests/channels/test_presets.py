"""Tests pinning the calibrated paper presets to their operating points."""

import math

import numpy as np
import pytest

from repro.channels.presets import (
    conservative_hap_fso,
    conservative_satellite_fso,
    paper_fiber,
    paper_hap_fso,
    paper_isl_fso,
    paper_satellite_fso,
)
from repro.constants import QNTN_TRANSMISSIVITY_THRESHOLD


def orbit_slant(elevation_rad: float, altitude_km: float = 500.0) -> float:
    re = 6371.0
    s = re * math.sin(elevation_rad)
    return math.sqrt(s * s + 2 * re * altitude_km + altitude_km**2) - s


class TestPaperSatellitePreset:
    def test_threshold_crossing_near_24_degrees(self):
        """The preset is calibrated so eta = 0.7 at ~24 deg elevation."""
        sat = paper_satellite_fso()
        el = math.radians(24.0)
        eta = float(np.asarray(sat.transmissivity(orbit_slant(el), el, 500.0)))
        assert eta == pytest.approx(QNTN_TRANSMISSIVITY_THRESHOLD, abs=5e-3)

    def test_below_threshold_at_paper_min_elevation(self):
        sat = paper_satellite_fso()
        el = math.pi / 9  # 20 degrees
        eta = float(np.asarray(sat.transmissivity(orbit_slant(el), el, 500.0)))
        assert eta < QNTN_TRANSMISSIVITY_THRESHOLD

    def test_zenith_link_strong(self):
        sat = paper_satellite_fso()
        eta = float(np.asarray(sat.transmissivity(500.0, math.pi / 2, 500.0)))
        assert eta > 0.93

    def test_monotone_in_elevation(self):
        sat = paper_satellite_fso()
        els = np.radians(np.linspace(15, 90, 20))
        etas = [
            float(np.asarray(sat.transmissivity(orbit_slant(e), e, 500.0))) for e in els
        ]
        assert all(a < b for a, b in zip(etas, etas[1:]))


class TestPaperHapPreset:
    def test_nominal_city_links_near_096(self):
        """HAP links to the three cities sit near eta ~ 0.96 (F ~ 0.98)."""
        hap = paper_hap_fso()
        for ground_km in (60.0, 72.0, 85.0):
            slant = math.hypot(ground_km, 30.0)
            el = math.atan2(30.0, ground_km)
            eta = float(np.asarray(hap.transmissivity(slant, el, 30.0)))
            assert 0.94 < eta < 0.98

    def test_comfortably_above_threshold(self):
        hap = paper_hap_fso()
        slant = math.hypot(110.0, 30.0)
        el = math.atan2(30.0, 110.0)
        assert float(np.asarray(hap.transmissivity(slant, el, 30.0))) > 0.9

    def test_hap_waist_respects_30cm_aperture(self):
        assert paper_hap_fso().beam_waist_m <= 0.15


class TestIslPreset:
    def test_never_passes_threshold_at_constellation_spacing(self):
        """Adjacent QNTN satellites are >2000 km apart: ISLs stay below 0.7."""
        isl = paper_isl_fso()
        eta = float(np.asarray(isl.transmissivity(2398.0)))
        assert eta < QNTN_TRANSMISSIVITY_THRESHOLD

    def test_vacuum_link_has_no_atmosphere(self):
        assert paper_isl_fso().atmosphere is None


class TestConservativePresets:
    def test_conservative_satellite_weaker_than_paper(self):
        el = math.radians(45.0)
        slant = orbit_slant(el)
        paper = float(np.asarray(paper_satellite_fso().transmissivity(slant, el, 500.0)))
        conservative = float(
            np.asarray(conservative_satellite_fso().transmissivity(slant, el, 500.0))
        )
        assert conservative < paper

    def test_conservative_hap_weaker_than_paper(self):
        slant = math.hypot(72.0, 30.0)
        el = math.atan2(30.0, 72.0)
        paper = float(np.asarray(paper_hap_fso().transmissivity(slant, el, 30.0)))
        conservative = float(
            np.asarray(conservative_hap_fso().transmissivity(slant, el, 30.0))
        )
        assert conservative < paper


class TestPaperFiber:
    def test_attenuation_constant(self):
        assert paper_fiber().attenuation_db_per_km == 0.15

    def test_intra_lan_links_near_lossless(self):
        """Table I nodes are a few hundred metres apart: eta ~ 1."""
        assert paper_fiber().transmissivity(0.5) > 0.98
