"""Tests for scintillation fade statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.atmosphere import rytov_variance_slant
from repro.channels.fso import (
    aperture_averaging_factor,
    fade_probability,
    mean_fade_margin_db,
)
from repro.errors import ValidationError


class TestFadeProbability:
    def test_no_turbulence_is_deterministic(self):
        assert fade_probability(0.8, 0.0, 0.7) == 0.0
        assert fade_probability(0.6, 0.0, 0.7) == 1.0

    def test_mean_below_threshold_fades_mostly(self):
        assert fade_probability(0.5, 0.1, 0.7) > 0.5

    def test_mean_above_threshold_fades_rarely(self):
        assert fade_probability(0.95, 0.01, 0.7) < 0.05

    def test_monotone_in_margin(self):
        probs = [fade_probability(m, 0.2, 0.7) for m in (0.72, 0.8, 0.9, 0.99)]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_in_turbulence_when_above_threshold(self):
        probs = [fade_probability(0.9, s, 0.7) for s in (0.01, 0.1, 0.5, 1.0)]
        assert probs == sorted(probs)

    def test_marginal_link_duty_factor(self):
        """A link whose mean sits exactly at the threshold fades ~half the
        time under weak scintillation — the deterministic rule's blind spot."""
        p = fade_probability(0.7, 0.05, 0.7)
        assert 0.4 < p < 0.65

    def test_matches_monte_carlo(self):
        """Closed form vs direct log-normal sampling."""
        rng = np.random.default_rng(3)
        eta_mean, sigma_r2, thr = 0.85, 0.3, 0.7
        sigma2 = math.log1p(sigma_r2)
        draws = eta_mean * np.exp(
            rng.normal(0.0, math.sqrt(sigma2), 200_000) - sigma2 / 2
        )
        empirical = float((draws < thr).mean())
        assert fade_probability(eta_mean, sigma_r2, thr) == pytest.approx(
            empirical, abs=0.005
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_property_is_probability(self, eta, s, thr):
        assert 0.0 <= fade_probability(eta, s, thr) <= 1.0

    def test_degenerate_endpoints(self):
        assert fade_probability(0.0, 0.5, 0.7) == 1.0
        assert fade_probability(0.9, 0.5, 0.0) == 0.0

    def test_rejects_negative_rytov(self):
        with pytest.raises(ValidationError):
            fade_probability(0.8, -0.1, 0.7)


class TestFadeMargin:
    def test_positive_above_threshold(self):
        assert mean_fade_margin_db(0.9, 0.7) > 0.0

    def test_zero_at_threshold(self):
        assert mean_fade_margin_db(0.7, 0.7) == pytest.approx(0.0)

    def test_3db_factor_two(self):
        assert mean_fade_margin_db(0.7, 0.35) == pytest.approx(3.0103, abs=1e-3)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            mean_fade_margin_db(0.0, 0.7)


class TestApertureAveraging:
    def test_factor_in_unit_interval(self):
        a = aperture_averaging_factor(810e-9, 78.0, 0.6)
        assert 0.0 < a < 1.0

    def test_larger_aperture_averages_more(self):
        small = aperture_averaging_factor(810e-9, 78.0, 0.05)
        big = aperture_averaging_factor(810e-9, 78.0, 0.6)
        assert big < small

    def test_point_receiver_no_averaging(self):
        a = aperture_averaging_factor(810e-9, 78.0, 1e-4)
        assert a == pytest.approx(1.0, abs=1e-3)

    def test_qntn_ground_aperture_suppresses_strongly(self):
        """The 120 cm ground aperture suppresses HAP-path scintillation by
        more than 10x."""
        assert aperture_averaging_factor(810e-9, 78.0, 0.6) < 0.1

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            aperture_averaging_factor(0.0, 78.0, 0.6)


class TestRealisticLinks:
    def test_satellite_link_fade_at_low_elevation(self):
        """Near the cut-off elevation the margin is zero, so scintillation
        fades the link a large fraction of the time even after aperture
        averaging."""
        sigma_r2 = rytov_variance_slant(532e-9, math.radians(24.0), 500.0)
        sigma_r2 *= aperture_averaging_factor(532e-9, 1060.0, 0.6)
        p = fade_probability(0.70, sigma_r2, 0.7)
        assert p > 0.3

    def test_hap_link_fade_small_after_averaging(self):
        """The 120 cm receiver tames the HAP path's raw Rytov variance
        (~0.77) to ~0.05, keeping the fade duty factor under ~10 %."""
        sigma_r2 = rytov_variance_slant(810e-9, math.atan2(30.0, 72.0), 30.0)
        raw = fade_probability(0.96, sigma_r2, 0.7)
        averaged = fade_probability(
            0.96,
            sigma_r2 * aperture_averaging_factor(810e-9, 78.0, 0.6),
            0.7,
        )
        assert averaged < 0.12 < raw
