"""Unit and property tests for the fiber channel (paper Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channels.fiber import FiberChannelModel
from repro.errors import ValidationError

lengths = st.floats(min_value=0.0, max_value=500.0)


class TestTransmissivity:
    def test_zero_length_lossless(self):
        assert FiberChannelModel().transmissivity(0.0) == pytest.approx(1.0)

    def test_paper_attenuation_at_known_length(self):
        """0.15 dB/km over 100 km = 15 dB -> eta = 10^-1.5."""
        fiber = FiberChannelModel(attenuation_db_per_km=0.15)
        assert fiber.transmissivity(100.0) == pytest.approx(10 ** (-1.5), rel=1e-12)

    def test_vectorized(self):
        eta = FiberChannelModel().transmissivity(np.array([0.0, 10.0, 20.0]))
        assert eta.shape == (3,)
        assert np.all(np.diff(eta) < 0)

    @given(lengths, lengths)
    def test_property_multiplicative_in_length(self, l1, l2):
        """Two segments in series equal one segment of the summed length."""
        fiber = FiberChannelModel(attenuation_db_per_km=0.2)
        combined = fiber.transmissivity(l1) * fiber.transmissivity(l2)
        assert combined == pytest.approx(fiber.transmissivity(l1 + l2), rel=1e-9)

    def test_rejects_negative_length(self):
        with pytest.raises(ValidationError):
            FiberChannelModel().transmissivity(-1.0)

    def test_lossless_fiber(self):
        fiber = FiberChannelModel(attenuation_db_per_km=0.0)
        assert fiber.transmissivity(1e4) == pytest.approx(1.0)


class TestConversions:
    def test_natural_alpha_roundtrip(self):
        fiber = FiberChannelModel.from_natural_alpha(0.05)
        assert fiber.natural_alpha_per_km == pytest.approx(0.05)
        assert fiber.transmissivity(10.0) == pytest.approx(np.exp(-0.5), rel=1e-12)

    def test_db_natural_consistency(self):
        fiber = FiberChannelModel(attenuation_db_per_km=0.15)
        l = 42.5  # the Boston-network link length cited in the paper intro
        assert fiber.transmissivity(l) == pytest.approx(
            np.exp(-fiber.natural_alpha_per_km * l), rel=1e-12
        )


class TestLengthForTransmissivity:
    def test_inverse_of_transmissivity(self):
        fiber = FiberChannelModel(attenuation_db_per_km=0.15)
        length = fiber.length_for_transmissivity(0.7)
        assert fiber.transmissivity(length) == pytest.approx(0.7, rel=1e-9)

    def test_paper_threshold_distance(self):
        """eta = 0.7 is reached after ~10 km of 0.15 dB/km fiber."""
        fiber = FiberChannelModel(attenuation_db_per_km=0.15)
        assert fiber.length_for_transmissivity(0.7) == pytest.approx(10.33, rel=0.01)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            FiberChannelModel().length_for_transmissivity(0.0)

    def test_lossless_edge_cases(self):
        lossless = FiberChannelModel(attenuation_db_per_km=0.0)
        assert lossless.length_for_transmissivity(1.0) == 0.0
        with pytest.raises(ValidationError):
            lossless.length_for_transmissivity(0.5)


class TestLatency:
    def test_latency_scales_with_index(self):
        fiber = FiberChannelModel()
        assert fiber.latency_s(100.0) == pytest.approx(
            100.0 * fiber.refractive_index / 299792.458
        )

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            FiberChannelModel().latency_s(-1.0)


class TestValidation:
    def test_rejects_negative_attenuation(self):
        with pytest.raises(ValidationError):
            FiberChannelModel(attenuation_db_per_km=-0.1)

    def test_rejects_bad_index(self):
        with pytest.raises(ValidationError):
            FiberChannelModel(refractive_index=0.0)
