"""Unit tests for link geometry helpers."""

import math

import pytest

from repro.channels.geometry import (
    elevation_between,
    fiber_length_km,
    great_circle_distance_km,
    look_geometry,
    slant_range_km,
)
from repro.constants import EARTH_RADIUS_KM
from repro.errors import ValidationError

TTU = (math.radians(36.1757), math.radians(-85.5066))
EPB = (math.radians(35.0416), math.radians(-85.2799))
ORNL = (math.radians(35.92), math.radians(-84.3))


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_distance_km(*TTU, *TTU) == 0.0

    def test_quarter_circumference(self):
        d = great_circle_distance_km(0.0, 0.0, 0.0, math.pi / 2)
        assert d == pytest.approx(math.pi / 2 * EARTH_RADIUS_KM)

    def test_symmetry(self):
        assert great_circle_distance_km(*TTU, *EPB) == pytest.approx(
            great_circle_distance_km(*EPB, *TTU)
        )

    def test_qntn_city_distances(self):
        """TTU-EPB ~127 km, TTU-ORNL ~112 km, EPB-ORNL ~130 km."""
        assert great_circle_distance_km(*TTU, *EPB) == pytest.approx(127.0, rel=0.05)
        assert great_circle_distance_km(*TTU, *ORNL) == pytest.approx(112.0, rel=0.05)
        assert great_circle_distance_km(*EPB, *ORNL) == pytest.approx(130.0, rel=0.05)

    def test_triangle_inequality(self):
        ab = great_circle_distance_km(*TTU, *EPB)
        bc = great_circle_distance_km(*EPB, *ORNL)
        ac = great_circle_distance_km(*TTU, *ORNL)
        assert ac <= ab + bc


class TestFiberLength:
    def test_default_is_great_circle(self):
        assert fiber_length_km(*TTU, *EPB) == pytest.approx(
            great_circle_distance_km(*TTU, *EPB)
        )

    def test_routing_factor(self):
        assert fiber_length_km(*TTU, *EPB, routing_factor=1.4) == pytest.approx(
            1.4 * great_circle_distance_km(*TTU, *EPB)
        )

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValidationError):
            fiber_length_km(*TTU, *EPB, routing_factor=0.9)


class TestLookGeometry:
    def test_straight_up(self):
        az, el, rng = look_geometry(*TTU, 0.0, *TTU, 500.0)
        assert el == pytest.approx(math.pi / 2, abs=1e-6)
        assert rng == pytest.approx(500.0, rel=1e-6)

    def test_hap_elevation_from_ttu(self):
        """The QNTN HAP sits ~60 km from TTU at 30 km altitude: elevation ~26 deg."""
        hap = (math.radians(35.6692), math.radians(-85.0662))
        el = elevation_between(*TTU, 0.0, *hap, 30.0)
        assert math.degrees(el) == pytest.approx(26.0, abs=4.0)

    def test_slant_range_exceeds_altitude(self):
        hap = (math.radians(35.6692), math.radians(-85.0662))
        rng = slant_range_km(*TTU, 0.0, *hap, 30.0)
        assert rng > 30.0

    def test_surface_target_at_negative_elevation(self):
        el = elevation_between(*TTU, 0.0, *EPB, 0.0)
        assert el < 0.0  # over the horizon curvature
