"""Property-based tests for the vectorized geometry and channel kernels.

Hypothesis drives randomized geometries through the vectorized
``elevation_and_range`` kernel against the scalar reference, checks
``visibility_mask`` semantics, and pins the physical monotonicity the
link budget relies on: at fixed elevation and altitude, FSO
transmissivity never increases with slant range.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.presets import paper_satellite_fso
from repro.orbits.visibility import (
    elevation_and_range,
    elevation_and_range_scalar,
    visibility_mask,
)

# Keep platforms well away from the site so asin/atan2 stay conditioned.
finite_lat = st.floats(-math.pi / 2 + 0.01, math.pi / 2 - 0.01)
finite_lon = st.floats(-math.pi, math.pi)
site_alt = st.floats(0.0, 5.0)
ecef_coord = st.floats(-8000.0, 8000.0)


@st.composite
def platform_positions(draw):
    n = draw(st.integers(1, 8))
    coords = draw(
        st.lists(
            st.tuples(ecef_coord, ecef_coord, ecef_coord).filter(
                lambda p: np.linalg.norm(p) > 6400.0
            ),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(coords, dtype=float)


class TestVectorizedMatchesScalar:
    @given(lat=finite_lat, lon=finite_lon, alt=site_alt, positions=platform_positions())
    @settings(max_examples=60, deadline=None)
    def test_elementwise_agreement(self, lat, lon, alt, positions):
        az_v, el_v, rng_v = elevation_and_range(lat, lon, alt, positions)
        az_s, el_s, rng_s = elevation_and_range_scalar(lat, lon, alt, positions)
        np.testing.assert_allclose(rng_v, rng_s, rtol=1e-12, atol=1e-9)
        np.testing.assert_allclose(el_v, el_s, rtol=1e-12, atol=1e-9)
        # Azimuth lives on a circle: 0 and 2*pi are the same bearing, so
        # compare the wrapped angular difference, not the raw values.
        az_diff = (az_v - az_s + math.pi) % (2 * math.pi) - math.pi
        np.testing.assert_allclose(az_diff, 0.0, atol=1e-9)

    @given(lat=finite_lat, lon=finite_lon, positions=platform_positions())
    @settings(max_examples=30, deadline=None)
    def test_shapes_and_ranges(self, lat, lon, positions):
        az, el, rng = elevation_and_range(lat, lon, 0.0, positions)
        assert az.shape == el.shape == rng.shape == positions.shape[:-1]
        assert np.all(rng > 0)
        assert np.all((el >= -math.pi / 2) & (el <= math.pi / 2))
        # A tiny negative atan2 result folds to exactly 2*pi under the
        # ``% 2*pi`` wrap, so the upper bound is closed.
        assert np.all((az >= 0) & (az <= 2 * math.pi))


class TestVisibilityMask:
    @given(
        elevations=st.lists(st.floats(-1.5, 1.5), min_size=1, max_size=30),
        threshold=st.floats(-0.5, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_comparison(self, elevations, threshold):
        el = np.asarray(elevations)
        mask = visibility_mask(el, threshold)
        assert mask.dtype == bool
        assert mask.tolist() == [e >= threshold for e in elevations]

    @given(elevations=st.lists(st.floats(-1.5, 1.5), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_threshold_monotone(self, elevations):
        """Raising the threshold never admits new samples."""
        el = np.asarray(elevations)
        loose = visibility_mask(el, 0.1)
        tight = visibility_mask(el, 0.4)
        assert np.all(loose | ~tight)


class TestTransmissivityMonotonicity:
    @given(
        elevation=st.floats(math.radians(5.0), math.radians(89.0)),
        base_km=st.floats(500.0, 1500.0),
        spread_km=st.floats(1.0, 1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_nonincreasing_in_slant_range(self, elevation, base_km, spread_km):
        model = paper_satellite_fso()
        ranges = np.linspace(base_km, base_km + spread_km, 16)
        eta = np.asarray(model.transmissivity(ranges, elevation, 500.0))
        assert np.all(np.diff(eta) <= 1e-15)
        assert np.all((eta >= 0.0) & (eta <= 1.0))

    @given(distance_km=st.floats(200.0, 3000.0))
    @settings(max_examples=30, deadline=None)
    def test_scalar_vector_consistency(self, distance_km):
        """The budget at one range equals that entry of the batched call."""
        model = paper_satellite_fso()
        batch = np.array([distance_km, distance_km + 100.0])
        vec = np.asarray(model.transmissivity(batch, math.radians(45.0), 500.0))
        one = model.transmissivity(distance_km, math.radians(45.0), 500.0)
        # Scalar and batched evaluation may differ by a couple of ULPs
        # (different NumPy reduction paths); 1e-12 is the suite-wide bar.
        assert vec[0] == pytest.approx(one, rel=1e-12)
