"""Unit tests for :class:`repro.engine.linkstate.LinkStateCache`.

The cache's graphs must reproduce the scalar ``QuantumNetwork.link_graph``
path edge-for-edge (etas to 1e-12), and its routing-table memoization must
actually reuse tables when the weighted feasible-edge set repeats.
"""

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_isl_fso, paper_satellite_fso
from repro.engine import LinkStateCache
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.utils.intervals import Interval


def assert_graphs_match(cached, direct, *, tol=1e-12):
    assert set(cached) == set(direct)
    for node in direct:
        assert set(cached[node]) == set(direct[node]), f"edge set differs at {node}"
        for neighbor, eta in direct[node].items():
            assert cached[node][neighbor] == pytest.approx(eta, abs=tol)


@pytest.fixture(scope="module")
def sat_network(small_ephemeris):
    network = build_qntn_ground_network()
    attach_satellites(network, small_ephemeris, paper_satellite_fso())
    return network


@pytest.fixture(scope="module")
def sat_cache(sat_network):
    return LinkStateCache(sat_network)


class TestGraphEquivalence:
    def test_matches_direct_link_graph_on_grid(self, sat_network, sat_cache, small_ephemeris):
        for t in small_ephemeris.times_s[::17]:
            assert_graphs_match(sat_cache.graph(float(t)), sat_network.link_graph(float(t)))

    def test_matches_between_grid_samples(self, sat_network, sat_cache, small_ephemeris):
        # Satellites move sample-and-hold, so a mid-interval query must
        # resolve to the most recent sample on both paths.
        t = float(small_ephemeris.times_s[3]) + 17.5
        assert_graphs_match(sat_cache.graph(t), sat_network.link_graph(t))

    def test_hap_network_matches(self):
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        cache = LinkStateCache(network)
        assert_graphs_match(cache.graph(0.0), network.link_graph(0.0))

    def test_hap_duty_cycle_mask(self):
        network = build_qntn_ground_network()
        attach_hap(
            network,
            HAP(operational_windows=[Interval(0.0, 500.0)]),
            paper_hap_fso(),
        )
        cache = LinkStateCache(network, times_s=np.array([0.0, 600.0]))
        assert_graphs_match(cache.graph(0.0), network.link_graph(0.0))
        assert_graphs_match(cache.graph(600.0), network.link_graph(600.0))
        # Outside the window every HAP link must be down on both paths.
        assert all("hap-0" not in nbrs for nbrs in cache.graph(600.0).values())

    def test_isl_channels_match(self):
        eph = generate_movement_sheet(qntn_constellation(6), duration_s=1800.0, step_s=300.0)
        network = build_qntn_ground_network()
        attach_satellites(network, eph, paper_satellite_fso(), isl_model=paper_isl_fso())
        cache = LinkStateCache(network)
        for t in eph.times_s:
            assert_graphs_match(cache.graph(float(t)), network.link_graph(float(t)))

    def test_all_hosts_present_even_when_isolated(self, sat_cache, sat_network):
        graph = sat_cache.graph_at_index(0)
        assert set(graph) == set(sat_network.host_names)


class TestTimeIndexing:
    def test_time_index_clamps(self, sat_cache, small_ephemeris):
        assert sat_cache.time_index(-100.0) == 0
        assert sat_cache.time_index(1e9) == sat_cache.n_times - 1
        assert sat_cache.n_times == small_ephemeris.n_samples

    def test_time_index_holds_previous_sample(self, sat_cache, small_ephemeris):
        step = float(small_ephemeris.times_s[1] - small_ephemeris.times_s[0])
        assert sat_cache.time_index(step - 0.1) == 0
        assert sat_cache.time_index(step) == 1

    def test_out_of_range_index_rejected(self, sat_cache):
        with pytest.raises(ValidationError):
            sat_cache.graph_at_index(sat_cache.n_times)

    def test_bad_explicit_grid_rejected(self, sat_network):
        with pytest.raises(ValidationError):
            LinkStateCache(sat_network, times_s=np.array([1.0, 1.0]))
        with pytest.raises(ValidationError):
            LinkStateCache(sat_network, times_s=np.array([]))

    def test_static_network_gets_single_sample_grid(self):
        network = build_qntn_ground_network()
        cache = LinkStateCache(network)
        assert cache.n_times == 1


class TestAdvanceIndex:
    """The streaming cursor's clamp contract (documented on advance_index).

    ``advance_index`` must resolve every timestamp to the identical index
    the stateless ``time_index`` bisection gives — including timestamps
    before the grid (clamp to 0), past the grid (clamp to the last
    sample), and non-monotonic arrivals that jump behind the cursor.
    """

    def fresh_cache(self, sat_network):
        return LinkStateCache(sat_network)

    def test_before_grid_clamps_to_first_sample(self, sat_network):
        cache = self.fresh_cache(sat_network)
        assert cache.advance_index(-1e6) == 0
        assert cache.advance_index(float(cache.times_s[0]) - 0.5) == 0

    def test_past_grid_clamps_to_last_sample(self, sat_network):
        cache = self.fresh_cache(sat_network)
        last = cache.n_times - 1
        assert cache.advance_index(float(cache.times_s[-1])) == last
        assert cache.advance_index(float(cache.times_s[-1]) + 1e9) == last
        # The cursor is pinned at the end; further queries stay clamped.
        assert cache.advance_index(2e9) == last

    def test_non_monotonic_jump_behind_cursor(self, sat_network):
        cache = self.fresh_cache(sat_network)
        ahead = float(cache.times_s[40])
        assert cache.advance_index(ahead) == 40
        # A timestamp behind the cursor must still resolve correctly
        # (full bisection fallback), without corrupting the cursor.
        behind = float(cache.times_s[7]) + 0.25
        assert cache.advance_index(behind) == 7
        assert cache.advance_index(ahead) == 40

    def test_interleaved_matches_time_index(self, sat_network, rng):
        cache = self.fresh_cache(sat_network)
        span = float(cache.times_s[-1])
        queries = np.concatenate(
            [
                np.sort(rng.uniform(-60.0, span + 120.0, size=80)),
                rng.uniform(-60.0, span + 120.0, size=40),  # arbitrary order
            ]
        )
        for t in queries:
            assert cache.advance_index(float(t)) == cache.time_index(float(t))

    def test_windowed_cursor_fills_lazily(self, sat_network):
        cache = LinkStateCache(sat_network, window=8)
        k = cache.advance_index(float(cache.times_s[3]))
        assert k == 3
        # advance_index only moves the cursor; the physics fill happens
        # at first graph access, one window at a time.
        assert cache._built_upto == 0
        cache.graph_at_index(k)
        assert cache._built_upto == 8


class TestRoutingMemoization:
    def test_static_network_reuses_one_table(self):
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        cache = LinkStateCache(network, times_s=np.array([0.0, 100.0, 5000.0]))
        trees = [cache.routing_tree(t, "ttu-0") for t in (0.0, 100.0, 5000.0)]
        assert trees[0] is trees[1] is trees[2]
        assert cache.n_tree_builds == 1
        assert cache.n_tree_hits == 2

    def test_distinct_edge_sets_get_distinct_tables(self, sat_cache, small_ephemeris):
        # Pick two grid samples with different usable-edge counts — their
        # edge keys must differ and each gets its own relaxation.
        counts = sat_cache.feasible_edge_counts()
        k0, k1 = 0, int(np.argmax(counts != counts[0]))
        assert counts[k0] != counts[k1], "fixture should vary over 2 h"
        assert sat_cache.edge_key(k0) != sat_cache.edge_key(k1)

    def test_tree_reaches_destinations_of_direct_path(self, sat_network, sat_cache):
        direct = NetworkSimulator(sat_network)
        t = 0.0
        outcome = direct.serve_request("ttu-0", "ttu-1", t)
        tree = sat_cache.routing_tree(t, "ttu-0")
        assert tuple(tree.path_to("ttu-1")) == outcome.path

    def test_edge_key_is_weighted(self, sat_cache):
        key = sat_cache.edge_key(0)
        assert all(len(entry) == 3 and entry[0] < entry[1] for entry in key)
        assert all(isinstance(entry[2], float) for entry in key)


class TestSimulatorIntegration:
    def test_simulator_lazily_builds_cache(self, sat_network):
        simulator = NetworkSimulator(sat_network, use_cache=True)
        assert simulator._linkstate is None
        simulator.link_graph(0.0)
        assert isinstance(simulator.linkstate, LinkStateCache)

    def test_invalidate_cache_rebuilds(self, sat_network):
        simulator = NetworkSimulator(sat_network, use_cache=True)
        first = simulator.linkstate
        simulator.invalidate_cache()
        assert simulator.linkstate is not first

    def test_feasible_edge_counts_shape(self, sat_cache):
        counts = sat_cache.feasible_edge_counts()
        assert counts.shape == (sat_cache.n_times,)
        assert counts.min() >= 0
