"""Windowed (incremental-advance) link state vs the eager precompute.

A windowed :class:`LinkStateCache` / :class:`LinkBudgetTable` defers the
transmissivity/admission/fault physics and fills it chunk-by-chunk as
the time cursor advances. Every chunk operation is elementwise over the
time axis, so the windowed series must equal the eager full-horizon
series *bitwise* — for any window size, with or without a fault plane —
and the fill must actually be lazy (that is the perf point).
"""

import numpy as np
import pytest

from repro.channels.presets import paper_satellite_fso
from repro.data.ground_nodes import all_ground_nodes
from repro.engine import LinkStateCache
from repro.engine.budgets import LinkBudgetTable
from repro.errors import ValidationError
from repro.faults import FaultSchedule, LinkFlap, SatelliteOutage, WeatherFade
from repro.network.topology import attach_satellites, build_qntn_ground_network
from repro.core.analysis import SpaceGroundAnalysis

WINDOWS = [1, 7, 64, 120, 170]  # 120 == n_times for the 2 h / 60 s fixture


@pytest.fixture(scope="module")
def sat_network(small_ephemeris):
    network = build_qntn_ground_network()
    attach_satellites(network, small_ephemeris, paper_satellite_fso())
    return network


@pytest.fixture(scope="module")
def fault_plane():
    schedule = FaultSchedule(
        events=(
            SatelliteOutage(0.0, 3600.0, satellite="sat-004"),
            WeatherFade(600.0, 4800.0, site="ttu-0", extra_db=2.5),
            LinkFlap(0.0, 1800.0, node_a="ttu-3", node_b="sat-001"),
        )
    )
    return schedule.compile()


def assert_same_graph_series(windowed, eager):
    assert windowed.n_times == eager.n_times
    for k in range(eager.n_times):
        gw, ge = windowed.graph_at_index(k), eager.graph_at_index(k)
        assert set(gw) == set(ge)
        for node in ge:
            assert gw[node] == ge[node]  # exact float equality, not approx


class TestLinkStateWindowed:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_bitwise_equal_to_eager(self, sat_network, window):
        eager = LinkStateCache(sat_network)
        windowed = LinkStateCache(sat_network, window=window)
        assert_same_graph_series(windowed, eager)
        np.testing.assert_array_equal(
            windowed.feasible_edge_counts(), eager.feasible_edge_counts()
        )

    @pytest.mark.parametrize("window", [1, 64])
    def test_bitwise_equal_with_faults(self, sat_network, fault_plane, window):
        eager = LinkStateCache(sat_network, faults=fault_plane)
        windowed = LinkStateCache(sat_network, faults=fault_plane, window=window)
        assert_same_graph_series(windowed, eager)

    def test_fill_is_lazy(self, sat_network):
        cache = LinkStateCache(sat_network, window=10)
        assert cache._built_upto == 0
        cache.graph_at_index(0)
        assert cache._built_upto == 10
        cache.graph_at_index(34)
        assert cache._built_upto == 40  # rounded up to the window boundary
        cache.graph_at_index(3)  # inside the built prefix: no growth
        assert cache._built_upto == 40

    def test_eager_cache_is_fully_built(self, sat_network):
        cache = LinkStateCache(sat_network)
        assert cache._built_upto == cache.n_times

    @pytest.mark.parametrize("window", [0, -3])
    def test_invalid_window_rejected(self, sat_network, window):
        with pytest.raises(ValidationError):
            LinkStateCache(sat_network, window=window)

    def test_routing_identical_to_eager(self, sat_network, small_ephemeris):
        eager = LinkStateCache(sat_network)
        windowed = LinkStateCache(sat_network, window=16)
        for t in small_ephemeris.times_s[::13]:
            for source in ("ttu-0", "ornl-10"):
                tw = windowed.routing_tree(float(t), source)
                te = eager.routing_tree(float(t), source)
                assert tw.costs == te.costs
                assert tw.predecessors == te.predecessors


class TestBudgetTableWindowed:
    @pytest.fixture(scope="class")
    def sites(self):
        return list(all_ground_nodes())[:4]

    @pytest.mark.parametrize("window", [1, 7, 120, 170])
    def test_bitwise_equal_to_eager(self, small_ephemeris, sites, window):
        model = paper_satellite_fso()
        eager = LinkBudgetTable(small_ephemeris, sites, model)
        windowed = LinkBudgetTable(small_ephemeris, sites, model, window=window)
        windowed.compute_all()
        for site in sites:
            be, bw = eager.budget(site.name), windowed.budget(site.name)
            np.testing.assert_array_equal(bw.transmissivity, be.transmissivity)
            np.testing.assert_array_equal(bw.usable, be.usable)

    def test_bitwise_equal_with_faults(self, small_ephemeris, sites, fault_plane):
        model = paper_satellite_fso()
        eager = LinkBudgetTable(small_ephemeris, sites, model, faults=fault_plane)
        windowed = LinkBudgetTable(
            small_ephemeris, sites, model, faults=fault_plane, window=9
        )
        windowed.compute_all()
        for site in sites:
            be, bw = eager.budget(site.name), windowed.budget(site.name)
            np.testing.assert_array_equal(bw.transmissivity, be.transmissivity)
            np.testing.assert_array_equal(bw.usable, be.usable)
            np.testing.assert_array_equal(bw.healthy_usable, be.healthy_usable)

    def test_ensure_index_advances_in_windows(self, small_ephemeris, sites):
        table = LinkBudgetTable(
            small_ephemeris, sites, paper_satellite_fso(), window=10
        )
        budget = table.budget(sites[0].name)
        assert table._filled[sites[0].name] == 10
        table.ensure_index(25)
        assert table._filled[sites[0].name] == 30
        # The arrays are filled in place — the handle stays valid.
        assert budget is table.budget(sites[0].name)

    def test_ensure_index_rejects_out_of_range(self, small_ephemeris, sites):
        table = LinkBudgetTable(
            small_ephemeris, sites, paper_satellite_fso(), window=10
        )
        n = small_ephemeris.n_samples
        with pytest.raises(ValidationError):
            table.ensure_index(n)
        with pytest.raises(ValidationError):
            table.ensure_index(-1)

    def test_invalid_window_rejected(self, small_ephemeris, sites):
        with pytest.raises(ValidationError):
            LinkBudgetTable(small_ephemeris, sites, paper_satellite_fso(), window=0)

    def test_analysis_window_and_budgets_exclusive(self, small_ephemeris, sites):
        model = paper_satellite_fso()
        table = LinkBudgetTable(small_ephemeris, sites, model)
        with pytest.raises(ValidationError):
            SpaceGroundAnalysis(
                small_ephemeris, sites, model, budgets=table, window=8
            )

    def test_analysis_ensure_time_index_noop_when_eager(self, small_ephemeris, sites):
        analysis = SpaceGroundAnalysis(small_ephemeris, sites, paper_satellite_fso())
        analysis.ensure_time_index(0)  # must not raise or recompute
