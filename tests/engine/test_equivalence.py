"""Cached-vs-direct simulator equivalence (the cache's acceptance gate).

A 12-satellite day: the cached :class:`NetworkSimulator` must reproduce
the direct scalar simulator's :class:`RequestOutcome` stream — ``served``,
``path`` and ``time_s`` exactly, ``path_transmissivity`` and ``fidelity``
to 1e-12 (the two paths differ only in einsum-vs-matmul rounding).
"""

import math

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.core.coverage import constellation_coverage_sweep
from repro.core.evaluation import evaluate_requests
from repro.core.requests import generate_requests
from repro.core.sweeps import run_constellation_sweep
from repro.data.ground_nodes import all_ground_nodes
from repro.network.hap import HAP
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation

TOL = 1e-12


def assert_outcomes_equivalent(direct, cached):
    assert direct.source == cached.source
    assert direct.destination == cached.destination
    assert direct.time_s == cached.time_s
    assert direct.served == cached.served
    assert direct.path == cached.path
    if direct.served:
        assert cached.path_transmissivity == pytest.approx(
            direct.path_transmissivity, abs=TOL
        )
        assert cached.fidelity == pytest.approx(direct.fidelity, abs=TOL)
    else:
        assert direct.path_transmissivity == cached.path_transmissivity == 0.0
        assert math.isnan(direct.fidelity) and math.isnan(cached.fidelity)


@pytest.fixture(scope="module")
def day_network_12():
    """A 12-satellite, full-day network at 900 s cadence (97 samples)."""
    ephemeris = generate_movement_sheet(
        qntn_constellation(12), duration_s=86400.0, step_s=900.0
    )
    network = build_qntn_ground_network()
    attach_satellites(network, ephemeris, paper_satellite_fso())
    return network, ephemeris


@pytest.fixture(scope="module")
def workload(sites):
    return [r.endpoints for r in generate_requests(sites, 100, 7)]


class TestSatelliteDayEquivalence:
    def test_outcomes_identical_over_day(self, day_network_12, workload):
        network, ephemeris = day_network_12
        direct = NetworkSimulator(network)
        cached = NetworkSimulator(network, use_cache=True)
        n_served = 0
        for t in ephemeris.times_s:
            for d, c in zip(
                direct.serve_requests(workload, float(t)),
                cached.serve_requests(workload, float(t)),
            ):
                assert_outcomes_equivalent(d, c)
                n_served += d.served
        assert n_served > 0, "day sweep should serve some requests"

    def test_single_request_off_grid_time(self, day_network_12):
        network, ephemeris = day_network_12
        direct = NetworkSimulator(network)
        cached = NetworkSimulator(network, use_cache=True)
        t = float(ephemeris.times_s[5]) + 123.4
        assert_outcomes_equivalent(
            direct.serve_request("ttu-0", "epb-3", t),
            cached.serve_request("ttu-0", "epb-3", t),
        )

    def test_lans_connected_matches(self, day_network_12):
        network, ephemeris = day_network_12
        direct = NetworkSimulator(network)
        cached = NetworkSimulator(network, use_cache=True)
        for t in ephemeris.times_s[::16]:
            assert direct.lans_connected("TTU", "EPB", float(t)) == cached.lans_connected(
                "TTU", "EPB", float(t)
            )


class TestHapEquivalence:
    def test_hap_outcomes_identical(self, workload):
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        direct = NetworkSimulator(network)
        cached = NetworkSimulator(network, use_cache=True)
        for d, c in zip(
            direct.serve_requests(workload, 0.0), cached.serve_requests(workload, 0.0)
        ):
            assert_outcomes_equivalent(d, c)


class TestEvaluationEquivalence:
    def test_evaluate_requests_cached_matches_direct(self, day_network_12, sites):
        network, _ = day_network_12
        simulator = NetworkSimulator(network)
        requests = generate_requests(sites, 40, 11)
        # Evaluate at every ephemeris sample so the 12-satellite day's few
        # serving windows are included and the fidelity lists are non-empty.
        direct = evaluate_requests(simulator, requests, n_time_steps=100, use_cache=False)
        cached = evaluate_requests(simulator, requests, n_time_steps=100, use_cache=True)
        assert direct.served_per_step == cached.served_per_step
        assert direct.n_time_steps == cached.n_time_steps
        assert len(direct.fidelities) > 0
        np.testing.assert_allclose(direct.fidelities, cached.fidelities, atol=TOL)
        assert cached.served_fraction == pytest.approx(direct.served_fraction, abs=TOL)
        assert cached.mean_fidelity == pytest.approx(
            direct.mean_fidelity, abs=TOL, nan_ok=True
        )


class TestSweepEquivalence:
    def test_constellation_sweep_cached_matches_direct(self):
        cached = run_constellation_sweep(
            [6, 12], duration_s=7200.0, step_s=120.0, n_requests=20, n_time_steps=10
        )
        direct = run_constellation_sweep(
            [6, 12],
            duration_s=7200.0,
            step_s=120.0,
            n_requests=20,
            n_time_steps=10,
            use_cache=False,
        )
        for c, d in zip(cached.points, direct.points):
            assert c.coverage == d.coverage
            assert c.service == d.service

    def test_coverage_sweep_cached_matches_direct(self):
        cached = constellation_coverage_sweep([6, 12], duration_s=7200.0, step_s=120.0)
        direct = constellation_coverage_sweep(
            [6, 12], duration_s=7200.0, step_s=120.0, use_cache=False
        )
        assert cached == direct
