"""Key integrity and corruption recovery of the content-addressed store.

Two families of guarantees:

* **Key sensitivity** — changing any single input that determines an
  artifact's content (one satellite's RAAN by 1e-9, the cadence, a
  channel parameter, the admission threshold, the site, the altitude)
  produces a different digest, so stale artifacts are unaddressable by
  construction.
* **Defensive loading** — a truncated payload, a flipped byte (caught by
  the per-member CRC pass), or a mismatched sidecar is detected, deleted
  and rebuilt; the rebuilt artifact is bit-identical to a fresh compute.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.channels.presets import paper_satellite_fso
from repro.data.ground_nodes import all_ground_nodes
from repro.engine.budgets import compute_site_budget
from repro.engine.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    canonical_digest,
    default_store,
    ephemeris_build_key,
    ephemeris_fingerprint,
    set_default_store,
    site_budget_key,
)
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.elements import ElementSet
from repro.orbits.walker import qntn_constellation

DURATION_S = 3600.0
STEP_S = 60.0


@pytest.fixture(scope="module")
def elements():
    return qntn_constellation(6)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


def _perturbed_raan(elements: ElementSet) -> ElementSet:
    raan = elements.raan.copy()
    raan[0] += 1e-9
    return ElementSet(elements.a, elements.e, elements.inc, raan, elements.argp, elements.nu)


def _budget_arrays(budget):
    return (
        budget.elevation_rad,
        budget.slant_range_km,
        budget.transmissivity,
        budget.usable,
    )


class TestKeySensitivity:
    def test_same_inputs_same_digest(self, elements):
        k1 = ephemeris_build_key(elements, duration_s=DURATION_S, step_s=STEP_S)
        k2 = ephemeris_build_key(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert k1 == k2

    def test_every_ephemeris_input_changes_digest(self, elements):
        base = ephemeris_build_key(elements, duration_s=DURATION_S, step_s=STEP_S)
        variants = [
            ephemeris_build_key(elements, duration_s=DURATION_S + STEP_S, step_s=STEP_S),
            ephemeris_build_key(elements, duration_s=DURATION_S, step_s=STEP_S / 2),
            ephemeris_build_key(
                _perturbed_raan(elements), duration_s=DURATION_S, step_s=STEP_S
            ),
            ephemeris_build_key(
                elements, duration_s=DURATION_S, step_s=STEP_S, include_j2=True
            ),
            ephemeris_build_key(
                elements, duration_s=DURATION_S, step_s=STEP_S, gmst_epoch_rad=0.1
            ),
            ephemeris_build_key(
                elements,
                duration_s=DURATION_S,
                step_s=STEP_S,
                names=[f"sat-{i}" for i in range(6)],
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_every_budget_input_changes_digest(self, store, elements):
        ephemeris = store.get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        fp = ephemeris_fingerprint(ephemeris)
        sites = list(all_ground_nodes())
        model = paper_satellite_fso()
        policy = LinkPolicy()
        base = site_budget_key(fp, sites[0], model, policy=policy, platform_altitude_km=500.0)
        other_ephemeris = store.get_or_build_ephemeris(
            _perturbed_raan(elements), duration_s=DURATION_S, step_s=STEP_S
        )
        variants = [
            site_budget_key(
                ephemeris_fingerprint(other_ephemeris),
                sites[0],
                model,
                policy=policy,
                platform_altitude_km=500.0,
            ),
            site_budget_key(fp, sites[1], model, policy=policy, platform_altitude_km=500.0),
            site_budget_key(
                fp,
                sites[0],
                dataclasses.replace(model, receiver_efficiency=0.97),
                policy=policy,
                platform_altitude_km=500.0,
            ),
            site_budget_key(
                fp,
                sites[0],
                model,
                policy=LinkPolicy(transmissivity_threshold=0.71),
                platform_altitude_km=500.0,
            ),
            site_budget_key(fp, sites[0], model, policy=policy, platform_altitude_km=550.0),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_schema_version_folded_into_digest(self):
        digest = canonical_digest({"kind": "probe"})
        body = json.dumps(
            {"schema": SCHEMA_VERSION + 1, "kind": "probe"},
            sort_keys=True,
            separators=(",", ":"),
        )
        import hashlib

        assert digest != hashlib.sha256(body.encode()).hexdigest()


class TestRoundTrip:
    def test_ephemeris_round_trips_bit_exactly(self, store, elements):
        built = store.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert store.stats.misses == 1 and store.stats.writes == 1

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.hits == 1 and warm.stats.misses == 0
        np.testing.assert_array_equal(loaded.times_s, built.times_s)
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)
        assert loaded.names == built.names

    def test_site_budget_round_trips_bit_exactly(self, store, elements):
        ephemeris = store.get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        site = all_ground_nodes()[0]
        model = paper_satellite_fso()
        built = store.get_or_build_site_budget(site, ephemeris, model)
        direct = compute_site_budget(site, ephemeris, model)

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_site_budget(site, ephemeris, model)
        assert warm.stats.hits == 1
        for a, b, c in zip(
            _budget_arrays(loaded), _budget_arrays(built), _budget_arrays(direct)
        ):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_warm_arrays_are_read_only_views(self, store, elements):
        """Warm loads are zero-copy memmaps; writes must be rejected."""
        store.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        positions = loaded.positions_ecef_km
        # Ephemeris normalises to a base ndarray view; the buffer must
        # still be the file mapping (no copy) and stay unwritable.
        assert isinstance(positions, np.memmap) or isinstance(positions.base, np.memmap)
        assert not positions.flags.writeable
        with pytest.raises((ValueError, OSError)):
            positions[0, 0, 0] = 0.0

    def test_budget_table_served_through_store(self, store, elements):
        ephemeris = store.get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        table = store.get_or_build_budget_table(
            ephemeris, list(all_ground_nodes()[:3]), paper_satellite_fso()
        )
        table.compute_all()
        assert store.stats.writes == 1 + 3  # ephemeris + three sites

        warm_store = ArtifactStore(store.root.parent)
        warm = warm_store.get_or_build_budget_table(
            warm_store.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S),
            list(all_ground_nodes()[:3]),
            paper_satellite_fso(),
        )
        warm.compute_all()
        assert warm_store.stats.misses == 0 and warm_store.stats.rebuilds == 0
        for site in all_ground_nodes()[:3]:
            for a, b in zip(
                _budget_arrays(warm.budget(site.name)),
                _budget_arrays(table.budget(site.name)),
            ):
                np.testing.assert_array_equal(a, b)


class TestCorruptionRecovery:
    def _seed_ephemeris(self, store, elements):
        built = store.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        digest = ephemeris_build_key(elements, duration_s=DURATION_S, step_s=STEP_S)
        return built, store.payload_path("ephemeris", digest), store.sidecar_path(
            "ephemeris", digest
        )

    def test_truncated_payload_rebuilt(self, store, elements):
        built, payload, _ = self._seed_ephemeris(store, elements)
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.rebuilds == 1 and warm.stats.hits == 0
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)
        # the rebuilt artifact is intact again
        again = ArtifactStore(store.root.parent)
        again.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert again.stats.hits == 1 and again.stats.rebuilds == 0

    def test_flipped_byte_caught_by_crc(self, store, elements):
        built, payload, _ = self._seed_ephemeris(store, elements)
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one interior (array data) byte
        payload.write_bytes(bytes(raw))

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.rebuilds == 1
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)

    def test_mismatched_sidecar_rebuilt(self, store, elements):
        built, _, sidecar = self._seed_ephemeris(store, elements)
        meta = json.loads(sidecar.read_text())
        meta["digest"] = "0" * 64
        sidecar.write_text(json.dumps(meta))

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.rebuilds == 1
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)

    def test_missing_sidecar_rebuilt(self, store, elements):
        built, _, sidecar = self._seed_ephemeris(store, elements)
        sidecar.unlink()

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.rebuilds == 1
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)

    def test_compressed_payload_served_via_fallback(self, store, elements):
        """A non-standard (compressed) payload is still served, not rebuilt."""
        built, payload, _ = self._seed_ephemeris(store, elements)
        with np.load(payload) as npz:
            arrays = {name: npz[name] for name in npz.files}
        with open(payload, "wb") as fh:
            np.savez_compressed(fh, **arrays)

        warm = ArtifactStore(store.root.parent)
        loaded = warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        assert warm.stats.hits == 1 and warm.stats.rebuilds == 0
        np.testing.assert_array_equal(loaded.positions_ecef_km, built.positions_ecef_km)


class TestDefaultStore:
    def test_env_var_opts_in(self, tmp_path, monkeypatch):
        previous = set_default_store(None)
        try:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
            set_default_store.__globals__["_default"] = (
                set_default_store.__globals__["_UNSET"]
            )
            resolved = default_store()
            assert isinstance(resolved, ArtifactStore)
            assert resolved.root.parent == tmp_path / "env-cache"
        finally:
            set_default_store(previous)

    def test_unset_env_means_disabled(self, monkeypatch):
        previous = set_default_store(None)
        try:
            monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
            set_default_store.__globals__["_default"] = (
                set_default_store.__globals__["_UNSET"]
            )
            assert default_store() is None
        finally:
            set_default_store(previous)

    def test_set_and_restore(self, tmp_path):
        store = ArtifactStore(tmp_path)
        previous = set_default_store(store)
        try:
            assert default_store() is store
        finally:
            set_default_store(previous)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError):
            set_default_store("not-a-store")


class TestStoreStats:
    """Hit/miss accounting on the public ``stats`` attribute and in obs."""

    def test_cold_run_counts_misses_and_writes(self, tmp_path, elements):
        store = ArtifactStore(tmp_path / "cache")
        store.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
        stats = store.stats.as_dict()
        assert stats["misses"] > 0
        assert stats["writes"] > 0
        assert stats["hits"] == 0

    def test_warm_run_hits_without_misses(self, tmp_path, elements):
        root = tmp_path / "cache"
        cold = ArtifactStore(root)
        built = cold.get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        warm = ArtifactStore(root)
        loaded = warm.get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        np.testing.assert_array_equal(built.positions_ecef_km, loaded.positions_ecef_km)
        stats = warm.stats.as_dict()
        assert stats["hits"] > 0
        assert stats["misses"] == 0
        assert stats["rebuilds"] == 0

    def test_obs_counters_mirror_stats(self, tmp_path, elements):
        from repro import obs

        root = tmp_path / "cache"
        ArtifactStore(root).get_or_build_ephemeris(
            elements, duration_s=DURATION_S, step_s=STEP_S
        )
        obs.reset()
        obs.enable()
        try:
            warm = ArtifactStore(root)
            warm.get_or_build_ephemeris(elements, duration_s=DURATION_S, step_s=STEP_S)
            snap = obs.registry().snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert snap["store.hits"]["value"] == warm.stats.hits > 0
        assert snap["store.misses"]["value"] == 0
