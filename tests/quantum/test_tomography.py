"""Tests for two-qubit state tomography."""

import numpy as np
import pytest

from repro.errors import QuantumStateError, ValidationError
from repro.network.protocols import distribute_entanglement
from repro.quantum.fidelity import pure_state_fidelity
from repro.quantum.states import bell_state, density_matrix, maximally_mixed
from repro.quantum.tomography import (
    linear_inversion,
    pauli_expectations,
    project_to_physical,
    sample_pauli_expectations,
    tomograph,
)


class TestPauliExpectations:
    def test_bell_state_correlations(self):
        exp = pauli_expectations(density_matrix(bell_state()))
        assert exp["II"] == pytest.approx(1.0)
        assert exp["XX"] == pytest.approx(1.0)
        assert exp["ZZ"] == pytest.approx(1.0)
        assert exp["YY"] == pytest.approx(-1.0)
        assert exp["XZ"] == pytest.approx(0.0, abs=1e-12)
        assert exp["IZ"] == pytest.approx(0.0, abs=1e-12)

    def test_maximally_mixed_all_zero(self):
        exp = pauli_expectations(maximally_mixed(2))
        for label, value in exp.items():
            expected = 1.0 if label == "II" else 0.0
            assert value == pytest.approx(expected, abs=1e-12)

    def test_rejects_single_qubit(self):
        with pytest.raises(QuantumStateError):
            pauli_expectations(maximally_mixed(1))


class TestLinearInversion:
    def test_exact_expectations_invert_perfectly(self):
        rho = distribute_entanglement([0.7]).rho
        rebuilt = linear_inversion(pauli_expectations(rho))
        np.testing.assert_allclose(rebuilt, rho, atol=1e-12)

    def test_missing_label_rejected(self):
        exp = pauli_expectations(maximally_mixed(2))
        exp.pop("XY")
        with pytest.raises(ValidationError):
            linear_inversion(exp)


class TestProjection:
    def test_physical_state_unchanged(self):
        rho = distribute_entanglement([0.6]).rho
        np.testing.assert_allclose(project_to_physical(rho), rho, atol=1e-12)

    def test_clips_negative_eigenvalues(self):
        bad = np.diag([0.7, 0.5, -0.1, -0.1]).astype(complex)
        fixed = project_to_physical(bad)
        eigvals = np.linalg.eigvalsh(fixed)
        assert eigvals.min() >= -1e-12
        assert np.trace(fixed).real == pytest.approx(1.0)

    def test_zero_collapse_rejected(self):
        with pytest.raises(QuantumStateError):
            project_to_physical(np.diag([-1.0, 0.0, 0.0, 0.0]).astype(complex))


class TestSampling:
    def test_deterministic_given_seed(self):
        rho = distribute_entanglement([0.8]).rho
        a = sample_pauli_expectations(rho, 100, seed=5)
        b = sample_pauli_expectations(rho, 100, seed=5)
        assert a == b

    def test_values_in_range(self):
        rho = distribute_entanglement([0.8]).rho
        sampled = sample_pauli_expectations(rho, 50, seed=1)
        assert all(-1.0 <= v <= 1.0 for v in sampled.values())

    def test_converges_to_exact(self):
        rho = distribute_entanglement([0.8]).rho
        exact = pauli_expectations(rho)
        sampled = sample_pauli_expectations(rho, 200_000, seed=2)
        for label in exact:
            assert sampled[label] == pytest.approx(exact[label], abs=0.01)

    def test_rejects_zero_shots(self):
        with pytest.raises(ValidationError):
            sample_pauli_expectations(maximally_mixed(2), 0)


class TestTomographPipeline:
    def test_high_shot_estimate_accurate(self):
        rho = distribute_entanglement([0.75]).rho
        true_f = pure_state_fidelity(bell_state(), rho, convention="sqrt")
        result = tomograph(rho, 100_000, seed=3)
        assert result.fidelity_estimate == pytest.approx(true_f, abs=0.005)

    def test_estimate_is_physical(self):
        result = tomograph(distribute_entanglement([0.6]).rho, 500, seed=4)
        eigvals = np.linalg.eigvalsh(result.rho_estimate)
        assert eigvals.min() >= -1e-10
        assert np.trace(result.rho_estimate).real == pytest.approx(1.0)

    def test_shot_noise_shrinks_with_budget(self):
        """Estimator spread scales down with the measurement budget."""
        rho = distribute_entanglement([0.8]).rho
        true_f = pure_state_fidelity(bell_state(), rho, convention="sqrt")

        def spread(shots: int) -> float:
            errs = [
                abs(tomograph(rho, shots, seed=s).fidelity_estimate - true_f)
                for s in range(12)
            ]
            return float(np.mean(errs))

        assert spread(10_000) < spread(100)

    def test_threshold_decision_from_tomography(self):
        """The network's eta >= 0.7 admission decision is reproducible from
        measured data at realistic shot counts."""
        good = tomograph(distribute_entanglement([0.85]).rho, 20_000, seed=6)
        bad = tomograph(distribute_entanglement([0.40]).rho, 20_000, seed=6)
        assert good.fidelity_estimate > 0.9
        assert bad.fidelity_estimate < 0.9
