"""Unit tests for operator algebra."""

import numpy as np
import pytest

from repro.errors import QuantumStateError
from repro.quantum.operators import (
    CNOT,
    HADAMARD,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    apply_unitary,
    embed_operator,
    is_unitary,
    partial_trace,
    partial_transpose,
    tensor,
)
from repro.quantum.states import bell_state, density_matrix, ket, maximally_mixed


class TestPaulis:
    @pytest.mark.parametrize("p", [PAULI_I, PAULI_X, PAULI_Y, PAULI_Z, HADAMARD, CNOT])
    def test_unitary(self, p):
        assert is_unitary(p)

    def test_pauli_algebra(self):
        np.testing.assert_allclose(PAULI_X @ PAULI_Y, 1j * PAULI_Z)
        np.testing.assert_allclose(PAULI_X @ PAULI_X, PAULI_I)

    def test_cnot_flips_target_when_control_set(self):
        np.testing.assert_allclose(CNOT @ ket(1, 0), ket(1, 1))
        np.testing.assert_allclose(CNOT @ ket(0, 1), ket(0, 1))


class TestTensor:
    def test_dimensions(self):
        assert tensor(PAULI_X, PAULI_I, PAULI_Z).shape == (8, 8)

    def test_single_operand(self):
        np.testing.assert_array_equal(tensor(PAULI_X), PAULI_X)

    def test_rejects_empty(self):
        with pytest.raises(QuantumStateError):
            tensor()

    def test_bell_from_circuit(self):
        """H on qubit 0 then CNOT produces |Phi+> from |00>."""
        psi = CNOT @ tensor(HADAMARD, PAULI_I) @ ket(0, 0)
        np.testing.assert_allclose(psi, bell_state("phi+"), atol=1e-12)


class TestEmbedOperator:
    def test_embed_on_first_qubit(self):
        np.testing.assert_allclose(embed_operator(PAULI_X, 0, 2), tensor(PAULI_X, PAULI_I))

    def test_embed_on_last_qubit(self):
        np.testing.assert_allclose(embed_operator(PAULI_Z, 2, 3), tensor(PAULI_I, PAULI_I, PAULI_Z))

    def test_rejects_out_of_range(self):
        with pytest.raises(QuantumStateError):
            embed_operator(PAULI_X, 2, 2)

    def test_rejects_non_2x2(self):
        with pytest.raises(QuantumStateError):
            embed_operator(CNOT, 0, 3)


class TestApplyUnitary:
    def test_x_flips_basis_state(self):
        rho = density_matrix(ket(0))
        out = apply_unitary(rho, PAULI_X)
        np.testing.assert_allclose(out, density_matrix(ket(1)))

    def test_shape_mismatch(self):
        with pytest.raises(QuantumStateError):
            apply_unitary(maximally_mixed(2), PAULI_X)


class TestPartialTrace:
    def test_product_state_factorises(self):
        rho_a = density_matrix(ket(0))
        rho_b = density_matrix((ket(0) + ket(1)) / np.sqrt(2))
        joint = tensor(rho_a, rho_b)
        np.testing.assert_allclose(partial_trace(joint, [0]), rho_a, atol=1e-12)
        np.testing.assert_allclose(partial_trace(joint, [1]), rho_b, atol=1e-12)

    def test_bell_marginal_is_maximally_mixed(self):
        rho = density_matrix(bell_state())
        np.testing.assert_allclose(partial_trace(rho, [0]), maximally_mixed(1), atol=1e-12)
        np.testing.assert_allclose(partial_trace(rho, [1]), maximally_mixed(1), atol=1e-12)

    def test_keep_all_is_identity_map(self):
        rho = density_matrix(bell_state())
        np.testing.assert_allclose(partial_trace(rho, [0, 1]), rho)

    def test_trace_preserved(self, rng):
        from repro.quantum.states import random_pure_state

        rho = density_matrix(random_pure_state(3, rng))
        reduced = partial_trace(rho, [1])
        assert np.trace(reduced).real == pytest.approx(1.0)

    def test_three_qubit_keep_two(self, rng):
        from repro.quantum.states import random_pure_state

        rho = density_matrix(random_pure_state(3, rng))
        reduced = partial_trace(rho, [0, 2])
        assert reduced.shape == (4, 4)
        assert np.trace(reduced).real == pytest.approx(1.0)

    def test_rejects_duplicates(self):
        with pytest.raises(QuantumStateError):
            partial_trace(maximally_mixed(2), [0, 0])

    def test_rejects_descending(self):
        with pytest.raises(QuantumStateError):
            partial_trace(maximally_mixed(2), [1, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(QuantumStateError):
            partial_trace(maximally_mixed(2), [5])


class TestPartialTranspose:
    def test_involution(self):
        rho = density_matrix(bell_state())
        np.testing.assert_allclose(partial_transpose(partial_transpose(rho, 1), 1), rho)

    def test_bell_state_has_negative_eigenvalue(self):
        """PPT criterion: entangled two-qubit states go negative."""
        rho = density_matrix(bell_state())
        eigvals = np.linalg.eigvalsh(partial_transpose(rho, 1))
        assert eigvals.min() == pytest.approx(-0.5)

    def test_product_state_stays_positive(self):
        rho = tensor(density_matrix(ket(0)), density_matrix(ket(1)))
        eigvals = np.linalg.eigvalsh(partial_transpose(rho, 0))
        assert eigvals.min() >= -1e-12

    def test_rejects_non_two_qubit(self):
        with pytest.raises(QuantumStateError):
            partial_transpose(maximally_mixed(3), 0)

    def test_rejects_bad_subsystem(self):
        with pytest.raises(QuantumStateError):
            partial_transpose(maximally_mixed(2), 2)
