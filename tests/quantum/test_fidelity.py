"""Unit and property tests for fidelity and entanglement measures."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantumStateError, ValidationError
from repro.quantum.channels import amplitude_damping, depolarizing
from repro.quantum.fidelity import (
    bell_pair_after_loss,
    concurrence,
    entanglement_fidelity_from_transmissivity,
    negativity,
    pure_state_fidelity,
    state_fidelity,
    transmissivity_for_fidelity,
)
from repro.quantum.states import (
    bell_state,
    density_matrix,
    ket,
    maximally_mixed,
    random_pure_state,
)

etas = st.floats(min_value=0.0, max_value=1.0)


class TestStateFidelity:
    def test_identical_states(self):
        rho = maximally_mixed(1)
        assert state_fidelity(rho, rho) == pytest.approx(1.0)

    def test_orthogonal_pure_states(self):
        a = density_matrix(ket(0))
        b = density_matrix(ket(1))
        assert state_fidelity(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self, rng):
        a = depolarizing(0.3).on_qubit(0, 1).apply(density_matrix(random_pure_state(1, rng)))
        b = depolarizing(0.1).on_qubit(0, 1).apply(density_matrix(random_pure_state(1, rng)))
        assert state_fidelity(a, b) == pytest.approx(state_fidelity(b, a))

    def test_pure_vs_mixed_known_value(self):
        rho = density_matrix(ket(0))
        assert state_fidelity(rho, maximally_mixed(1)) == pytest.approx(0.5)

    def test_sqrt_convention_is_square_root(self, rng):
        a = density_matrix(random_pure_state(2, rng))
        b = maximally_mixed(2)
        f2 = state_fidelity(a, b, convention="squared")
        f1 = state_fidelity(a, b, convention="sqrt")
        assert f1 == pytest.approx(np.sqrt(f2))

    def test_matches_pure_state_shortcut(self, rng):
        psi = random_pure_state(2, rng)
        rho = depolarizing(0.2).on_qubit(1, 2).apply(density_matrix(psi))
        full = state_fidelity(density_matrix(psi), rho, convention="squared")
        fast = pure_state_fidelity(psi, rho, convention="squared")
        assert full == pytest.approx(fast, abs=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(QuantumStateError):
            state_fidelity(maximally_mixed(1), maximally_mixed(2))

    def test_bad_convention(self):
        with pytest.raises(ValidationError):
            state_fidelity(maximally_mixed(1), maximally_mixed(1), convention="nope")


class TestPureStateFidelity:
    def test_rejects_matrix_target(self):
        with pytest.raises(QuantumStateError):
            pure_state_fidelity(maximally_mixed(1), maximally_mixed(1))

    def test_rejects_zero_target(self):
        with pytest.raises(QuantumStateError):
            pure_state_fidelity(np.zeros(2), maximally_mixed(1))

    def test_normalises_target(self):
        f = pure_state_fidelity(2.0 * ket(0), density_matrix(ket(0)))
        assert f == pytest.approx(1.0)


class TestBellPairAfterLoss:
    def test_perfect_channel(self):
        rho = bell_pair_after_loss(1.0)
        np.testing.assert_allclose(rho, density_matrix(bell_state()), atol=1e-12)

    def test_dead_channel_leaves_classical_mixture(self):
        rho = bell_pair_after_loss(0.0)
        # |00> and |10> each with probability 1/2, no coherence.
        assert rho[0, 0].real == pytest.approx(0.5)
        assert rho[2, 2].real == pytest.approx(0.5)
        assert abs(rho[0, 3]) == pytest.approx(0.0, abs=1e-12)

    def test_damped_qubit_choice_symmetric_fidelity(self):
        f0 = pure_state_fidelity(bell_state(), bell_pair_after_loss(0.6, damped_qubit=0))
        f1 = pure_state_fidelity(bell_state(), bell_pair_after_loss(0.6, damped_qubit=1))
        assert f0 == pytest.approx(f1)


class TestClosedForm:
    @given(etas)
    def test_property_matches_kraus_pipeline(self, eta):
        """Closed form F = (1+sqrt(eta))/2 equals the explicit Kraus result."""
        rho = bell_pair_after_loss(eta)
        measured = pure_state_fidelity(bell_state(), rho, convention="sqrt")
        closed = entanglement_fidelity_from_transmissivity(eta, convention="sqrt")
        assert measured == pytest.approx(float(closed), abs=1e-12)

    def test_paper_operating_point(self):
        """eta = 0.7 gives F > 0.9 (Section IV-A)."""
        f = entanglement_fidelity_from_transmissivity(0.7)
        assert 0.9 < float(f) < 0.92

    def test_squared_convention(self):
        f = entanglement_fidelity_from_transmissivity(0.7, convention="squared")
        assert float(f) == pytest.approx(0.8433, abs=1e-3)

    def test_vectorized(self):
        out = entanglement_fidelity_from_transmissivity(np.linspace(0, 1, 11))
        assert out.shape == (11,)
        assert out[0] == pytest.approx(0.5)
        assert out[-1] == pytest.approx(1.0)

    def test_monotone_increasing(self):
        out = entanglement_fidelity_from_transmissivity(np.linspace(0, 1, 101))
        assert np.all(np.diff(out) > 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            entanglement_fidelity_from_transmissivity(1.2)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_inverse_roundtrip(self, eta):
        f = float(entanglement_fidelity_from_transmissivity(eta))
        assert transmissivity_for_fidelity(f) == pytest.approx(eta, abs=1e-9)

    def test_inverse_rejects_unreachable(self):
        with pytest.raises(ValidationError):
            transmissivity_for_fidelity(0.4)


class TestConcurrence:
    def test_bell_state_maximal(self):
        assert concurrence(density_matrix(bell_state())) == pytest.approx(1.0)

    def test_product_state_zero(self):
        rho = density_matrix(ket(0, 1))
        assert concurrence(rho) == pytest.approx(0.0, abs=1e-9)

    def test_maximally_mixed_zero(self):
        assert concurrence(maximally_mixed(2)) == pytest.approx(0.0, abs=1e-9)

    def test_decreases_with_damping(self):
        c_high = concurrence(bell_pair_after_loss(0.9))
        c_low = concurrence(bell_pair_after_loss(0.3))
        assert c_high > c_low > 0.0

    def test_known_value_for_damped_bell(self):
        """One-sided AD of |Phi+> has concurrence sqrt(eta)."""
        eta = 0.64
        assert concurrence(bell_pair_after_loss(eta)) == pytest.approx(np.sqrt(eta), abs=1e-9)

    def test_rejects_wrong_dim(self):
        with pytest.raises(QuantumStateError):
            concurrence(maximally_mixed(3))


class TestNegativity:
    def test_bell_state(self):
        assert negativity(density_matrix(bell_state())) == pytest.approx(0.5)

    def test_separable_zero(self):
        assert negativity(maximally_mixed(2)) == pytest.approx(0.0, abs=1e-12)

    def test_decreases_with_damping(self):
        assert negativity(bell_pair_after_loss(0.9)) > negativity(bell_pair_after_loss(0.2))
