"""Tests for the quantum-memory decoherence model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.quantum.fidelity import pure_state_fidelity
from repro.quantum.memory import QuantumMemory
from repro.quantum.states import bell_state, density_matrix, is_density_matrix, ket


class TestConstruction:
    def test_defaults_valid(self):
        QuantumMemory()

    def test_rejects_t2_exceeding_2t1(self):
        with pytest.raises(ValidationError):
            QuantumMemory(t1_s=1.0, t2_s=2.5)

    def test_t2_equals_2t1_allowed(self):
        """The relaxation-limited case T2 = 2 T1 is physical."""
        mem = QuantumMemory(t1_s=1.0, t2_s=2.0)
        assert mem.dephasing_probability(0.5) == 0.0

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValidationError):
            QuantumMemory(efficiency=0.0)


class TestDecayFunctions:
    def test_no_storage_no_decay(self):
        mem = QuantumMemory(t1_s=1.0, t2_s=0.5, efficiency=1.0)
        assert mem.relaxation_transmissivity(0.0) == pytest.approx(1.0)
        assert mem.dephasing_probability(0.0) == pytest.approx(0.0)

    def test_relaxation_exponential(self):
        mem = QuantumMemory(t1_s=2.0, t2_s=1.0)
        assert mem.relaxation_transmissivity(2.0) == pytest.approx(np.exp(-1.0))

    def test_efficiency_applied(self):
        mem = QuantumMemory(efficiency=0.9)
        assert mem.relaxation_transmissivity(0.0) == pytest.approx(0.9)

    def test_dephasing_saturates_at_half(self):
        mem = QuantumMemory(t1_s=1e6, t2_s=0.01)
        assert mem.dephasing_probability(1e3) == pytest.approx(0.5)

    def test_rejects_negative_time(self):
        with pytest.raises(ValidationError):
            QuantumMemory().relaxation_transmissivity(-1.0)


class TestStorageChannel:
    def test_identity_at_zero_time(self):
        mem = QuantumMemory(t1_s=1.0, t2_s=0.5)
        rho = density_matrix(ket(1))
        np.testing.assert_allclose(mem.storage_channel(0.0).apply(rho), rho, atol=1e-12)

    def test_long_storage_decays_to_ground(self):
        mem = QuantumMemory(t1_s=0.1, t2_s=0.05)
        rho = density_matrix(ket(1))
        out = mem.storage_channel(10.0).apply(rho)
        assert out[0, 0].real == pytest.approx(1.0, abs=1e-3)

    def test_output_is_density_matrix(self):
        mem = QuantumMemory(t1_s=1.0, t2_s=0.7)
        rho = density_matrix((ket(0) + ket(1)) / np.sqrt(2))
        assert is_density_matrix(mem.storage_channel(0.3).apply(rho))

    def test_store_pair_shapes(self):
        mem = QuantumMemory()
        rho = density_matrix(bell_state())
        out = mem.store_pair(rho, 0.1)
        assert out.shape == (4, 4)
        assert is_density_matrix(out)

    def test_rejects_single_qubit_pair(self):
        with pytest.raises(ValidationError):
            QuantumMemory().store_pair(np.eye(2) / 2, 0.1)


class TestFidelityAfterStorage:
    def test_monotone_decay_in_time(self):
        mem = QuantumMemory(t1_s=1.0, t2_s=0.5)
        fids = [mem.fidelity_after_storage(0.95, dt) for dt in (0.0, 0.1, 0.5, 2.0)]
        assert fids == sorted(fids, reverse=True)

    def test_zero_time_matches_delivery_fidelity(self):
        from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

        mem = QuantumMemory(t1_s=1.0, t2_s=0.5)
        f = mem.fidelity_after_storage(0.9, 0.0)
        assert f == pytest.approx(float(entanglement_fidelity_from_transmissivity(0.9)))

    def test_heralding_latency_cost_negligible_for_good_memory(self):
        """A 10 ms herald costs a T1 = 1 s memory well under 1 % fidelity."""
        mem = QuantumMemory(t1_s=1.0, t2_s=1.0)
        f0 = mem.fidelity_after_storage(0.9, 0.0)
        f1 = mem.fidelity_after_storage(0.9, 0.01)
        assert f0 - f1 < 0.01

    def test_poor_memory_erases_advantage(self):
        """With T1 = 1 ms, even HAP-grade links drop below the 0.9 target
        after a satellite-scale herald time."""
        mem = QuantumMemory(t1_s=1e-3, t2_s=1e-3)
        f = mem.fidelity_after_storage(0.95, 0.01)
        assert f < 0.9
