"""Unit tests for quantum state construction and validation."""

import numpy as np
import pytest

from repro.errors import QuantumStateError
from repro.quantum.states import (
    BellState,
    bell_state,
    density_matrix,
    is_density_matrix,
    ket,
    ket_from_string,
    maximally_mixed,
    purity,
    qubit_count,
    random_pure_state,
    validate_density_matrix,
)


class TestKet:
    def test_single_qubit(self):
        np.testing.assert_array_equal(ket(0), [1, 0])
        np.testing.assert_array_equal(ket(1), [0, 1])

    def test_two_qubit_big_endian(self):
        np.testing.assert_array_equal(ket(0, 1), [0, 1, 0, 0])
        np.testing.assert_array_equal(ket(1, 0), [0, 0, 1, 0])

    def test_from_string(self):
        np.testing.assert_array_equal(ket_from_string("10"), ket(1, 0))

    def test_rejects_bad_bits(self):
        with pytest.raises(QuantumStateError):
            ket(2)
        with pytest.raises(QuantumStateError):
            ket()
        with pytest.raises(QuantumStateError):
            ket_from_string("0x")


class TestBellStates:
    @pytest.mark.parametrize("kind", list(BellState))
    def test_normalised(self, kind):
        psi = bell_state(kind)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_phi_plus_components(self):
        psi = bell_state(BellState.PHI_PLUS)
        np.testing.assert_allclose(psi, [1, 0, 0, 1] / np.sqrt(2))

    def test_string_alias(self):
        np.testing.assert_array_equal(bell_state("psi-"), bell_state(BellState.PSI_MINUS))

    def test_orthogonality(self):
        kinds = list(BellState)
        for i, a in enumerate(kinds):
            for b in kinds[i + 1 :]:
                assert abs(np.vdot(bell_state(a), bell_state(b))) < 1e-12


class TestDensityMatrix:
    def test_pure_state_properties(self):
        rho = density_matrix(bell_state())
        assert is_density_matrix(rho)
        assert purity(rho) == pytest.approx(1.0)

    def test_normalises_input(self):
        rho = density_matrix(np.array([2.0, 0.0]))
        np.testing.assert_allclose(rho, [[1, 0], [0, 0]])

    def test_rejects_zero_vector(self):
        with pytest.raises(QuantumStateError):
            density_matrix(np.zeros(2))

    def test_rejects_matrix_input(self):
        with pytest.raises(QuantumStateError):
            density_matrix(np.eye(2))


class TestMaximallyMixed:
    def test_trace_one(self):
        rho = maximally_mixed(2)
        assert np.trace(rho).real == pytest.approx(1.0)
        assert purity(rho) == pytest.approx(0.25)

    def test_rejects_zero_qubits(self):
        with pytest.raises(QuantumStateError):
            maximally_mixed(0)


class TestRandomPureState:
    def test_normalised(self, rng):
        psi = random_pure_state(3, rng)
        assert psi.shape == (8,)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = random_pure_state(2, np.random.default_rng(5))
        b = random_pure_state(2, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestValidateDensityMatrix:
    def test_accepts_valid(self):
        validate_density_matrix(maximally_mixed(1))

    def test_rejects_non_hermitian(self):
        bad = np.array([[0.5, 0.5], [0.0, 0.5]], dtype=complex)
        with pytest.raises(QuantumStateError, match="Hermitian"):
            validate_density_matrix(bad)

    def test_rejects_wrong_trace(self):
        with pytest.raises(QuantumStateError, match="trace"):
            validate_density_matrix(np.eye(2, dtype=complex))

    def test_rejects_negative_eigenvalue(self):
        bad = np.array([[1.5, 0.0], [0.0, -0.5]], dtype=complex)
        with pytest.raises(QuantumStateError, match="negative"):
            validate_density_matrix(bad)

    def test_rejects_non_square(self):
        with pytest.raises(QuantumStateError):
            validate_density_matrix(np.zeros((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(QuantumStateError):
            validate_density_matrix(np.eye(3) / 3)

    def test_is_density_matrix_false_paths(self):
        assert not is_density_matrix(np.eye(3))  # trace 3
        assert not is_density_matrix(np.zeros((2, 3)))


class TestQubitCount:
    def test_counts(self):
        assert qubit_count(ket(0, 1, 1)) == 3
        assert qubit_count(maximally_mixed(2)) == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(QuantumStateError):
            qubit_count(np.zeros(3))
