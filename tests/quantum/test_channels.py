"""Unit and property tests for Kraus channels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantumStateError
from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    dephasing,
    depolarizing,
    identity_channel,
)
from repro.quantum.states import (
    bell_state,
    density_matrix,
    is_density_matrix,
    ket,
    maximally_mixed,
    random_pure_state,
)

probs = st.floats(min_value=0.0, max_value=1.0)


class TestKrausChannel:
    def test_rejects_incomplete_kraus_set(self):
        with pytest.raises(QuantumStateError, match="trace preserving"):
            KrausChannel([0.5 * np.eye(2)])

    def test_rejects_empty(self):
        with pytest.raises(QuantumStateError):
            KrausChannel([])

    def test_rejects_mixed_dims(self):
        with pytest.raises(QuantumStateError):
            KrausChannel([np.eye(2), np.eye(4)])

    def test_apply_shape_mismatch(self):
        with pytest.raises(QuantumStateError):
            identity_channel(1).apply(maximally_mixed(2))

    def test_compose_dim_mismatch(self):
        with pytest.raises(QuantumStateError):
            identity_channel(1).compose(identity_channel(2))

    def test_identity_is_noop(self, rng):
        rho = density_matrix(random_pure_state(1, rng))
        np.testing.assert_allclose(identity_channel(1).apply(rho), rho)

    def test_kraus_operators_returns_copies(self):
        ch = amplitude_damping(0.5)
        ops = ch.kraus_operators
        ops[0][0, 0] = 99.0
        np.testing.assert_allclose(ch.kraus_operators[0][0, 0], 1.0)

    def test_on_qubit_requires_single_qubit_channel(self):
        with pytest.raises(QuantumStateError):
            identity_channel(2).on_qubit(0, 3)


class TestAmplitudeDamping:
    def test_paper_kraus_form(self):
        """Eq. 3: K0 = diag(1, sqrt(eta)); K1 has sqrt(1-eta) top-right."""
        k0, k1 = amplitude_damping(0.49).kraus_operators
        np.testing.assert_allclose(k0, [[1, 0], [0, 0.7]])
        np.testing.assert_allclose(k1, [[0, np.sqrt(0.51)], [0, 0]])

    def test_full_damping_decays_to_ground(self):
        rho = density_matrix(ket(1))
        out = amplitude_damping(0.0).apply(rho)
        np.testing.assert_allclose(out, density_matrix(ket(0)), atol=1e-12)

    def test_no_damping_is_identity(self, rng):
        rho = density_matrix(random_pure_state(1, rng))
        np.testing.assert_allclose(amplitude_damping(1.0).apply(rho), rho, atol=1e-12)

    def test_excited_population_scales_with_eta(self):
        rho = density_matrix(ket(1))
        out = amplitude_damping(0.6).apply(rho)
        assert out[1, 1].real == pytest.approx(0.6)
        assert out[0, 0].real == pytest.approx(0.4)

    def test_coherence_scales_with_sqrt_eta(self):
        plus = density_matrix((ket(0) + ket(1)) / np.sqrt(2))
        out = amplitude_damping(0.25).apply(plus)
        assert abs(out[0, 1]) == pytest.approx(0.5 * 0.5)  # 0.5 * sqrt(0.25)

    @given(probs, probs)
    def test_property_composition_multiplies_transmissivities(self, a, b):
        """AD(a) ∘ AD(b) == AD(a*b) — the identity behind path products."""
        rho = np.array([[0.35, 0.21 + 0.1j], [0.21 - 0.1j, 0.65]], dtype=complex)
        seq = amplitude_damping(a).apply(amplitude_damping(b).apply(rho))
        direct = amplitude_damping(a * b).apply(rho)
        np.testing.assert_allclose(seq, direct, atol=1e-12)

    @given(probs)
    def test_property_output_is_density_matrix(self, eta):
        rho = density_matrix(bell_state())
        out = amplitude_damping(eta).on_qubit(1, 2).apply(rho)
        assert is_density_matrix(out)

    def test_rejects_out_of_range(self):
        with pytest.raises(QuantumStateError):
            amplitude_damping(1.5)
        with pytest.raises(QuantumStateError):
            amplitude_damping(-0.1)


class TestPauliChannels:
    def test_dephasing_kills_coherence(self):
        plus = density_matrix((ket(0) + ket(1)) / np.sqrt(2))
        out = dephasing(0.5).apply(plus)
        # p = 0.5 corresponds to complete dephasing of the off-diagonals
        # only at p=0.5 with the (1-2p) coherence factor -> zero.
        assert abs(out[0, 1]) == pytest.approx(0.0, abs=1e-12)

    def test_bit_flip_full(self):
        out = bit_flip(1.0).apply(density_matrix(ket(0)))
        np.testing.assert_allclose(out, density_matrix(ket(1)), atol=1e-12)

    def test_depolarizing_limits(self):
        rho = density_matrix(ket(0))
        out = depolarizing(0.75).apply(rho)
        # p = 3/4 sends any state to the maximally mixed state.
        np.testing.assert_allclose(out, maximally_mixed(1), atol=1e-12)

    @given(probs)
    def test_property_depolarizing_preserves_density(self, p):
        out = depolarizing(p).apply(density_matrix(ket(1)))
        assert is_density_matrix(out)

    def test_rejects_bad_probability(self):
        for ch in (dephasing, bit_flip, depolarizing):
            with pytest.raises(QuantumStateError):
                ch(-0.1)


class TestOnQubit:
    def test_damping_second_qubit_only(self):
        rho = density_matrix(ket(1, 1))
        out = amplitude_damping(0.0).on_qubit(1, 2).apply(rho)
        np.testing.assert_allclose(out, density_matrix(ket(1, 0)), atol=1e-12)

    def test_damping_first_qubit_only(self):
        rho = density_matrix(ket(1, 1))
        out = amplitude_damping(0.0).on_qubit(0, 2).apply(rho)
        np.testing.assert_allclose(out, density_matrix(ket(0, 1)), atol=1e-12)

    def test_lifted_channel_still_trace_preserving(self):
        lifted = depolarizing(0.3).on_qubit(2, 3)
        out = lifted.apply(maximally_mixed(3))
        assert np.trace(out).real == pytest.approx(1.0)
