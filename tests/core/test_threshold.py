"""Tests for the Fig. 5 transmissivity-threshold experiment."""

import numpy as np
import pytest

from repro.core.threshold import transmissivity_threshold_experiment
from repro.errors import ValidationError


class TestThresholdExperiment:
    def test_sweep_shape(self):
        result = transmissivity_threshold_experiment(step=0.01)
        assert result.transmissivities.shape == (101,)
        assert result.fidelities.shape == (101,)
        assert result.transmissivities[0] == 0.0
        assert result.transmissivities[-1] == 1.0

    def test_fidelity_curve_endpoints(self):
        """F(0) = 0.5, F(1) = 1 in the sqrt convention (Fig. 5 shape)."""
        result = transmissivity_threshold_experiment(step=0.05)
        assert result.fidelities[0] == pytest.approx(0.5)
        assert result.fidelities[-1] == pytest.approx(1.0)

    def test_monotone_increasing(self):
        result = transmissivity_threshold_experiment(step=0.02)
        assert np.all(np.diff(result.fidelities) > 0)

    def test_paper_operating_point(self):
        """At eta = 0.7 the fidelity exceeds 0.9 (Section IV-A)."""
        result = transmissivity_threshold_experiment(step=0.01)
        idx = int(round(0.7 / 0.01))
        assert result.fidelities[idx] > 0.9

    def test_identified_threshold_reaches_target(self):
        result = transmissivity_threshold_experiment(step=0.01, target_fidelity=0.9)
        assert not np.isnan(result.threshold)
        assert result.threshold <= 0.7  # 0.7 is sufficient, per the paper
        idx = int(round(result.threshold / 0.01))
        assert result.fidelities[idx] >= 0.9
        if idx > 0:
            assert result.fidelities[idx - 1] < 0.9

    def test_closed_form_matches_kraus_pipeline(self):
        via_kraus = transmissivity_threshold_experiment(step=0.1, use_kraus_pipeline=True)
        closed = transmissivity_threshold_experiment(step=0.1, use_kraus_pipeline=False)
        np.testing.assert_allclose(via_kraus.fidelities, closed.fidelities, atol=1e-12)

    def test_squared_convention_threshold_higher(self):
        sqrt_thr = transmissivity_threshold_experiment(step=0.01).threshold
        sq_thr = transmissivity_threshold_experiment(step=0.01, convention="squared").threshold
        assert sq_thr > sqrt_thr

    def test_unreachable_target_gives_nan(self):
        result = transmissivity_threshold_experiment(step=0.5, target_fidelity=1.0)
        # eta = 1 reaches F = 1 exactly, so use a step grid without 1.0... the
        # grid always includes 1.0, so force an unreachable target via squared
        # convention and target slightly above 1 is invalid; instead check the
        # reachable case is found at the last grid point.
        assert result.threshold == pytest.approx(1.0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValidationError):
            transmissivity_threshold_experiment(step=0.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValidationError):
            transmissivity_threshold_experiment(target_fidelity=0.0)
