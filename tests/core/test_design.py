"""Tests for the constellation design-space sweep."""

import numpy as np
import pytest

from repro.core.design import DesignPoint, design_coverage, design_sweep
from repro.errors import ValidationError


class TestDesignCoverage:
    def test_paper_point_reproduces_gateway_coverage(self):
        """Gateway-only coverage at the paper design matches the full
        31-node computation to within a point (city-scale LANs)."""
        c = design_coverage(53.0, 500.0, step_s=240.0)
        assert c == pytest.approx(56.0, abs=2.5)

    def test_lower_inclination_covers_tennessee_better(self):
        """A shell inclined near the region's 35.5 deg latitude beats the
        paper's 53 deg choice decisively."""
        c40 = design_coverage(40.0, 500.0, step_s=240.0)
        c53 = design_coverage(53.0, 500.0, step_s=240.0)
        assert c40 > c53 + 20.0

    def test_high_altitude_hurts_with_fixed_optics(self):
        """Beyond ~600 km the calibrated beam overspreads the aperture and
        the threshold elevation climbs, shrinking footprints."""
        c500 = design_coverage(53.0, 500.0, step_s=240.0)
        c900 = design_coverage(53.0, 900.0, step_s=240.0)
        assert c900 < c500

    def test_polar_shell_poor_for_midlatitudes(self):
        c90 = design_coverage(90.0, 500.0, step_s=480.0)
        c40 = design_coverage(40.0, 500.0, step_s=480.0)
        assert c90 < c40

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            design_coverage(0.0, 500.0)
        with pytest.raises(ValidationError):
            design_coverage(53.0, 50.0)


class TestDesignSweep:
    def test_grid_order_and_matrix(self):
        incs = [45.0, 53.0]
        alts = [500.0, 600.0]
        result = design_sweep(incs, alts, step_s=480.0)
        assert len(result.points) == 4
        assert result.points[0] == DesignPoint(
            45.0, 500.0, result.points[0].coverage_percentage
        )
        matrix = result.coverage_matrix(incs, alts)
        assert matrix.shape == (2, 2)
        assert matrix[1, 0] == result.points[2].coverage_percentage

    def test_best_point(self):
        result = design_sweep([40.0, 53.0], [500.0], step_s=480.0)
        assert result.best.inclination_deg == 40.0

    def test_rejects_empty_grid(self):
        with pytest.raises(ValidationError):
            design_sweep([], [500.0])
