"""Tests for coverage computation (Eqs. 6-7, Fig. 6 machinery)."""

import numpy as np
import pytest

from repro.core.coverage import (
    CoverageResult,
    constellation_coverage_sweep,
    coverage_from_mask,
)
from repro.utils.intervals import Interval


class TestCoverageFromMask:
    def test_full_coverage(self):
        times = np.arange(0, 100, 10.0)
        result = coverage_from_mask(
            times, np.ones(10, dtype=bool), n_satellites=6, horizon_s=100.0
        )
        assert result.percentage == pytest.approx(100.0)
        assert result.total_minutes == pytest.approx(100.0 / 60.0)
        assert len(result.intervals) == 1

    def test_no_coverage(self):
        times = np.arange(0, 100, 10.0)
        result = coverage_from_mask(
            times, np.zeros(10, dtype=bool), n_satellites=6, horizon_s=100.0
        )
        assert result.percentage == 0.0
        assert result.intervals == ()

    def test_half_coverage(self):
        times = np.arange(0, 100, 10.0)
        mask = np.array([True] * 5 + [False] * 5)
        result = coverage_from_mask(times, mask, n_satellites=12, horizon_s=100.0)
        assert result.percentage == pytest.approx(50.0)
        assert result.intervals == (Interval(0.0, 50.0),)

    def test_multiple_intervals_summed(self):
        """T_c sums interval durations exactly as Eq. 6 specifies."""
        times = np.arange(0, 60, 10.0)
        mask = np.array([True, False, True, True, False, True])
        result = coverage_from_mask(times, mask, n_satellites=6, horizon_s=60.0)
        assert len(result.intervals) == 3
        assert result.total_minutes * 60.0 == pytest.approx(40.0)


class TestCoverageSweep:
    def test_monotone_in_constellation_size(self, sites, day_ephemeris_36):
        """More satellites never reduce coverage (prefix constellations)."""

        def factory(n):
            return day_ephemeris_36.subset(range(n))

        results = constellation_coverage_sweep(
            [6, 18, 36], sites=sites, ephemeris_factory=factory, step_s=120.0
        )
        percentages = [r.percentage for r in results]
        assert percentages == sorted(percentages)
        assert results[0].n_satellites == 6

    def test_empty_sweep(self):
        assert constellation_coverage_sweep([]) == []

    def test_result_records_sizes(self, sites, day_ephemeris_36):
        def factory(n):
            return day_ephemeris_36.subset(range(n))

        results = constellation_coverage_sweep(
            [12], sites=sites, ephemeris_factory=factory
        )
        assert isinstance(results[0], CoverageResult)
        assert results[0].n_satellites == 12
        assert 0.0 <= results[0].percentage <= 100.0


class TestFullDayBlackout:
    """A never-connected day pins coverage to exactly 0.0 (ISSUE 5)."""

    TIMES = np.arange(0.0, 86400.0, 30.0)

    def test_coverage_exactly_zero(self):
        result = coverage_from_mask(
            self.TIMES,
            np.zeros(self.TIMES.size, dtype=bool),
            n_satellites=12,
            horizon_s=86400.0,
        )
        assert result.percentage == 0.0
        assert result.total_minutes == 0.0
        assert result.intervals == ()

    def test_outage_intervals_cover_the_horizon(self):
        from repro.core.coverage import outage_intervals

        outages = outage_intervals(self.TIMES, np.zeros(self.TIMES.size, dtype=bool))
        assert len(outages) == 1
        assert outages[0].start == 0.0
        assert outages[0].end == pytest.approx(86400.0)

    def test_coverage_and_outage_partition_any_mask(self):
        from repro.core.coverage import outage_intervals

        rng = np.random.default_rng(5)
        mask = rng.random(self.TIMES.size) < 0.4
        covered = coverage_from_mask(
            self.TIMES, mask, n_satellites=12, horizon_s=86400.0
        )
        outage_s = sum(iv.duration for iv in outage_intervals(self.TIMES, mask))
        assert covered.total_minutes * 60.0 + outage_s == pytest.approx(86400.0)
