"""Tests for inter-LAN request generation."""

import pytest

from repro.core.requests import Request, generate_requests
from repro.data.ground_nodes import TTU_NODES, all_ground_nodes
from repro.errors import ValidationError


class TestRequest:
    def test_endpoints(self):
        req = Request("ttu-0", "epb-1", "ttu", "epb")
        assert req.endpoints == ("ttu-0", "epb-1")

    def test_rejects_same_lan(self):
        with pytest.raises(ValidationError):
            Request("ttu-0", "ttu-1", "ttu", "ttu")

    def test_rejects_same_node(self):
        with pytest.raises(ValidationError):
            Request("ttu-0", "ttu-0", "ttu", "epb")


class TestGenerateRequests:
    def test_count(self, sites):
        assert len(generate_requests(sites, 100, seed=1)) == 100

    def test_endpoints_always_in_different_lans(self, sites):
        for req in generate_requests(sites, 200, seed=2):
            assert req.source_lan != req.destination_lan

    def test_deterministic_given_seed(self, sites):
        a = generate_requests(sites, 50, seed=3)
        b = generate_requests(sites, 50, seed=3)
        assert a == b

    def test_different_seeds_differ(self, sites):
        a = generate_requests(sites, 50, seed=3)
        b = generate_requests(sites, 50, seed=4)
        assert a != b

    def test_all_lans_appear_as_sources(self, sites):
        reqs = generate_requests(sites, 300, seed=5)
        assert {r.source_lan for r in reqs} == {"ttu", "epb", "ornl"}

    def test_zero_requests(self, sites):
        assert generate_requests(sites, 0, seed=1) == []

    def test_rejects_negative(self, sites):
        with pytest.raises(ValidationError):
            generate_requests(sites, -1)

    def test_rejects_single_lan(self):
        with pytest.raises(ValidationError):
            generate_requests(list(TTU_NODES), 5)

    def test_endpoint_names_exist(self, sites):
        names = {s.name for s in all_ground_nodes()}
        for req in generate_requests(sites, 100, seed=6):
            assert req.source in names
            assert req.destination in names
