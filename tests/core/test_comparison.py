"""Tests for the Table III comparison (reduced-size, fast)."""

import math

import pytest

from repro.core.architecture import AirGroundArchitecture, SpaceGroundArchitecture
from repro.core.comparison import ComparisonRow, compare_architectures


@pytest.fixture(scope="module")
def rows(day_ephemeris_36):
    space = SpaceGroundArchitecture(
        36, duration_s=86400.0, step_s=120.0, ephemeris=day_ephemeris_36
    )
    air = AirGroundArchitecture(duration_s=86400.0, step_s=120.0)
    return compare_architectures(
        n_requests=20, n_time_steps=20, seed=3, space=space, air=air
    )


# The day_ephemeris_36 fixture lives in conftest at session scope; redeclare
# here so the module-scoped fixture above can consume it.
@pytest.fixture(scope="module")
def day_ephemeris_36():
    from repro.orbits.ephemeris import generate_movement_sheet
    from repro.orbits.walker import qntn_constellation

    return generate_movement_sheet(qntn_constellation(36), duration_s=86400.0, step_s=120.0)


class TestCompareArchitectures:
    def test_two_rows_in_order(self, rows):
        assert [r.architecture for r in rows] == ["Space-Ground", "Air-Ground"]

    def test_air_ground_dominates(self, rows):
        """The paper's qualitative conclusion: HAP wins on all metrics."""
        space, air = rows
        assert air.coverage_percentage > space.coverage_percentage
        assert air.served_percentage > space.served_percentage
        assert air.mean_fidelity > space.mean_fidelity

    def test_air_ground_ideal_values(self, rows):
        _, air = rows
        assert air.coverage_percentage == pytest.approx(100.0)
        assert air.served_percentage == pytest.approx(100.0)
        assert air.mean_fidelity == pytest.approx(0.98, abs=0.01)

    def test_space_ground_values_plausible(self, rows):
        space, _ = rows
        assert 0.0 < space.coverage_percentage < 100.0
        assert 0.0 < space.served_percentage < 100.0
        assert 0.8 < space.mean_fidelity < 1.0 or math.isnan(space.mean_fidelity)

    def test_row_from_result(self, day_ephemeris_36):
        arch = SpaceGroundArchitecture(
            6, duration_s=86400.0, step_s=120.0, ephemeris=day_ephemeris_36
        )
        result = arch.evaluate(n_requests=5, n_time_steps=5, seed=1)
        row = ComparisonRow.from_result(result)
        assert row.architecture == "Space-Ground"
        assert row.coverage_percentage == result.coverage_percentage
