"""Tests for the one-call reproduction report."""

import json

import pytest

from repro.core.report import full_reproduction_report
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    report = full_reproduction_report(
        sizes=[6, 12],
        step_s=600.0,
        n_requests=5,
        n_time_steps=5,
        seed=1,
        output_dir=out,
    )
    return report, out


class TestReportContent:
    def test_sections_present(self, small_report):
        report, _ = small_report
        assert "# QNTN reproduction report" in report.markdown
        assert "Fig. 5" in report.markdown
        assert "Table III" in report.markdown
        assert "55.17" in report.markdown  # paper reference quoted

    def test_components_consistent(self, small_report):
        report, _ = small_report
        assert report.sweep.sizes == [6, 12]
        assert [r.architecture for r in report.table3] == ["Space-Ground", "Air-Ground"]
        # The table in the markdown carries the measured air-ground row.
        air = report.table3[1]
        assert f"{air.mean_fidelity:.4f}" in report.markdown

    def test_threshold_consistent(self, small_report):
        report, _ = small_report
        assert report.threshold.threshold <= 0.7


class TestReportArtifacts:
    def test_files_written(self, small_report):
        _, out = small_report
        assert (out / "report.md").exists()
        assert (out / "fig5_threshold.json").exists()
        assert (out / "constellation_sweep.json").exists()
        assert (out / "table3_comparison.json").exists()

    def test_json_records_loadable(self, small_report):
        _, out = small_report
        doc = json.loads((out / "table3_comparison.json").read_text())
        assert doc["experiment"] == "table3_comparison"
        assert "air_ground_fidelity" in doc["metrics"]

    def test_markdown_file_matches_return(self, small_report):
        report, out = small_report
        assert (out / "report.md").read_text() == report.markdown


class TestValidation:
    def test_rejects_bad_workload(self):
        with pytest.raises(ValidationError):
            full_reproduction_report(n_requests=0)
