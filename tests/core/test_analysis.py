"""Tests for the vectorized analysis engines, including the equivalence of
the array fast path with the object-level simulator."""

import math

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.core.analysis import AirGroundAnalysis, SpaceGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.errors import ValidationError


class TestSpaceGroundAnalysis:
    def test_budget_shapes(self, sat_analysis_small):
        budget = sat_analysis_small.budget("ttu-0")
        assert budget.transmissivity.shape == (12, 120)
        assert budget.usable.dtype == bool

    def test_budget_cached(self, sat_analysis_small):
        assert sat_analysis_small.budget("ttu-0") is sat_analysis_small.budget("ttu-0")

    def test_usable_implies_policy(self, sat_analysis_small):
        budget = sat_analysis_small.budget("epb-0")
        policy = sat_analysis_small.policy
        assert np.all(
            budget.transmissivity[budget.usable] >= policy.transmissivity_threshold
        )
        assert np.all(budget.elevation_rad[budget.usable] >= policy.min_elevation_rad)

    def test_lans_discovered(self, sat_analysis_small):
        assert sat_analysis_small.lans == ["ttu", "epb", "ornl"]

    def test_lan_usable_is_or_of_members(self, sat_analysis_small):
        lan_mask = sat_analysis_small.lan_usable("ttu")
        member_masks = [
            sat_analysis_small.budget(s.name).usable
            for s in sat_analysis_small.lan_sites("ttu")
        ]
        np.testing.assert_array_equal(lan_mask, np.logical_or.reduce(member_masks))

    def test_all_pairs_connected_subset_of_each_pair(self, sat_analysis_small):
        allp = sat_analysis_small.all_pairs_connected()
        for a, b in (("ttu", "epb"), ("ttu", "ornl"), ("epb", "ornl")):
            pair = sat_analysis_small.pair_connected(a, b)
            assert np.all(~allp | pair)

    def test_unknown_site_rejected(self, sat_analysis_small):
        with pytest.raises(ValidationError):
            sat_analysis_small.budget("nope")
        with pytest.raises(ValidationError):
            sat_analysis_small.lan_sites("nope")

    def test_requires_named_lans(self, small_ephemeris):
        from repro.data.ground_nodes import GroundNode

        nodes = [GroundNode("x", 36.0, -85.0, 0.0, "")]
        with pytest.raises(ValidationError):
            SpaceGroundAnalysis(small_ephemeris, nodes, paper_satellite_fso())

    def test_best_relay_none_when_uncovered(self, sat_analysis_small):
        hits = [
            sat_analysis_small.best_relay("ttu-0", "epb-0", t)
            for t in range(sat_analysis_small.n_times)
        ]
        assert any(h is None for h in hits)

    def test_best_relay_transmissivity_is_product(self, sat_analysis_small):
        for t in range(sat_analysis_small.n_times):
            hit = sat_analysis_small.best_relay("ttu-0", "epb-0", t)
            if hit is not None:
                sat_idx, eta = hit
                bs = sat_analysis_small.budget("ttu-0")
                bd = sat_analysis_small.budget("epb-0")
                assert eta == pytest.approx(
                    bs.transmissivity[sat_idx, t] * bd.transmissivity[sat_idx, t]
                )
                break

    def test_matches_object_level_simulator(
        self, sat_analysis_small, sat_simulator_small, small_ephemeris
    ):
        """The array fast path reproduces Bellman–Ford over real objects."""
        pairs = [("ttu-0", "epb-0"), ("ornl-3", "ttu-2"), ("epb-7", "ornl-10")]
        for t_idx in range(0, 120, 10):
            t_s = float(small_ephemeris.times_s[t_idx])
            fast = sat_analysis_small.serve(pairs, t_idx)
            for (src, dst), eta_fast in zip(pairs, fast):
                outcome = sat_simulator_small.serve_request(src, dst, t_s)
                if eta_fast is None:
                    assert not outcome.served
                else:
                    assert outcome.served
                    assert outcome.path_transmissivity == pytest.approx(eta_fast, rel=1e-9)


class TestAirGroundAnalysis:
    def _analysis(self, **kwargs):
        defaults = dict(
            hap_lat_deg=QNTN_HAP_LAT_DEG,
            hap_lon_deg=QNTN_HAP_LON_DEG,
            hap_alt_km=QNTN_HAP_ALTITUDE_KM,
        )
        defaults.update(kwargs)
        return AirGroundAnalysis(list(all_ground_nodes()), paper_hap_fso(), **defaults)

    def test_all_sites_usable(self):
        analysis = self._analysis()
        assert all(analysis.usable(s.name) for s in analysis.sites)

    def test_transmissivities_near_paper_regime(self):
        analysis = self._analysis()
        etas = [analysis.transmissivity(s.name) for s in analysis.sites]
        assert min(etas) > 0.9
        assert max(etas) < 1.0

    def test_full_coverage_when_always_on(self):
        analysis = self._analysis(times_s=np.arange(10.0))
        assert analysis.all_pairs_connected().all()

    def test_duty_cycle_limits_coverage(self):
        times = np.arange(10.0)
        mask = times < 5.0
        analysis = self._analysis(times_s=times, operational_mask=mask)
        np.testing.assert_array_equal(analysis.all_pairs_connected(), mask)

    def test_serve_products(self):
        analysis = self._analysis()
        (eta,) = analysis.serve([("ttu-0", "epb-0")], 0)
        assert eta == pytest.approx(
            analysis.transmissivity("ttu-0") * analysis.transmissivity("epb-0")
        )

    def test_serve_respects_duty_cycle(self):
        times = np.arange(4.0)
        mask = np.array([True, False, True, False])
        analysis = self._analysis(times_s=times, operational_mask=mask)
        assert analysis.serve([("ttu-0", "epb-0")], 0)[0] is not None
        assert analysis.serve([("ttu-0", "epb-0")], 1)[0] is None

    def test_matches_object_level_simulator(self, hap_simulator):
        analysis = self._analysis()
        (eta,) = analysis.serve([("ttu-0", "epb-3")], 0)
        outcome = hap_simulator.serve_request("ttu-0", "epb-3", 0.0)
        assert outcome.path_transmissivity == pytest.approx(eta, rel=1e-9)

    def test_unknown_site(self):
        with pytest.raises(ValidationError):
            self._analysis().transmissivity("nope")

    def test_mask_shape_validation(self):
        with pytest.raises(ValidationError):
            self._analysis(times_s=np.arange(3.0), operational_mask=np.ones(4, dtype=bool))
