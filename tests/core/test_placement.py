"""Tests for HAP placement optimisation and fleets."""

import numpy as np
import pytest

from repro.constants import QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.core.placement import (
    HapFleet,
    hap_site_transmissivities,
    min_site_transmissivity,
    optimize_hap_position,
)
from repro.data.ground_nodes import all_ground_nodes
from repro.errors import ValidationError


class TestSiteTransmissivities:
    def test_shapes_and_bounds(self, sites):
        from repro.channels.presets import paper_hap_fso

        etas = hap_site_transmissivities(
            QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG, 30.0, sites, paper_hap_fso()
        )
        assert etas.shape == (31,)
        assert np.all((etas >= 0) & (etas <= 1))

    def test_paper_position_serves_all_nodes(self):
        assert min_site_transmissivity(QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG) > 0.9

    def test_distant_position_fails(self):
        """A HAP over Memphis (~400 km west) cannot serve the QNTN sites."""
        assert min_site_transmissivity(35.15, -90.05) < 0.7


class TestOptimizeHapPosition:
    def test_paper_position_is_near_optimal(self):
        """The paper's hand-picked hover point is within a few km and a
        fraction of a percent of the grid optimum."""
        lat, lon, eta = optimize_hap_position(resolution_deg=0.1)
        paper_eta = min_site_transmissivity(QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG)
        # The paper's exact point may sit between grid cells and edge out
        # the best grid point by a sliver; both must agree to < 1e-3.
        assert abs(eta - paper_eta) < 1e-3
        assert abs(lat - QNTN_HAP_LAT_DEG) < 0.5
        assert abs(lon - QNTN_HAP_LON_DEG) < 0.5

    def test_optimum_beats_interior_grid_points(self):
        lat, lon, eta = optimize_hap_position(resolution_deg=0.2)
        assert eta > min_site_transmissivity(lat + 0.2, lon)
        assert eta > min_site_transmissivity(lat, lon + 0.2)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValidationError):
            optimize_hap_position(resolution_deg=0.0)


class TestHapFleet:
    def test_single_platform_matches_direct_computation(self, sites):
        from repro.channels.presets import paper_hap_fso

        fleet = HapFleet(((QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG),))
        best = fleet.site_best_transmissivities(sites)
        direct = hap_site_transmissivities(
            QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG, 30.0, sites, paper_hap_fso()
        )
        np.testing.assert_allclose(best, direct)

    def test_adding_platform_never_hurts(self, sites):
        one = HapFleet(((QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG),))
        two = HapFleet(((QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG), (35.9, -84.5)))
        np.testing.assert_array_compare(
            np.less_equal,
            one.site_best_transmissivities(sites),
            two.site_best_transmissivities(sites) + 1e-15,
        )

    def test_single_platform_cannot_survive_failure(self):
        fleet = HapFleet(((QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG),))
        assert fleet.all_sites_served()
        assert not fleet.survives_single_failure()

    def test_redundant_pair_survives_failure(self):
        fleet = HapFleet(
            (
                (QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG),
                (QNTN_HAP_LAT_DEG + 0.1, QNTN_HAP_LON_DEG - 0.1),
            )
        )
        assert fleet.survives_single_failure()

    def test_pair_with_one_useless_platform_does_not_survive(self):
        fleet = HapFleet(
            ((QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG), (35.15, -90.05))  # Memphis
        )
        assert fleet.all_sites_served()
        assert not fleet.survives_single_failure()

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValidationError):
            HapFleet(())
