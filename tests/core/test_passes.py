"""Tests for satellite-pass and coverage-gap statistics."""

import numpy as np
import pytest

from repro.core.passes import coverage_gaps, pass_statistics, site_pass_statistics
from repro.errors import ValidationError


class TestPassStatistics:
    def test_single_pass(self):
        times = np.arange(0.0, 100.0, 10.0)
        mask = (times >= 30.0) & (times < 60.0)
        stats = pass_statistics(times, mask, horizon_s=100.0)
        assert stats.n_passes == 1
        assert stats.total_contact_s == pytest.approx(30.0)
        assert stats.mean_duration_s == pytest.approx(30.0)
        # Gaps: 30 s leading + 40 s trailing.
        assert stats.max_gap_s == pytest.approx(40.0)
        assert stats.mean_gap_s == pytest.approx(35.0)

    def test_no_passes(self):
        times = np.arange(0.0, 50.0, 10.0)
        stats = pass_statistics(times, np.zeros(5, dtype=bool), horizon_s=50.0)
        assert stats.n_passes == 0
        assert stats.max_gap_s == 50.0
        assert stats.total_contact_s == 0.0

    def test_continuous_coverage(self):
        times = np.arange(0.0, 50.0, 10.0)
        stats = pass_statistics(times, np.ones(5, dtype=bool), horizon_s=50.0)
        assert stats.n_passes == 1
        assert stats.total_contact_s == pytest.approx(50.0)
        assert stats.max_gap_s == 0.0

    def test_multiple_passes(self):
        times = np.arange(0.0, 60.0, 10.0)
        mask = np.array([True, False, True, True, False, True])
        stats = pass_statistics(times, mask, horizon_s=60.0)
        assert stats.n_passes == 3
        assert stats.max_duration_s == pytest.approx(20.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            pass_statistics(np.arange(3.0), np.ones(4, dtype=bool))


class TestSitePassStatistics:
    def test_small_constellation_site(self, sat_analysis_small):
        stats = site_pass_statistics(sat_analysis_small, "ttu-0")
        # With 12 satellites over 2 h some contact should exist but not
        # continuous coverage.
        assert stats.total_contact_s < 7200.0
        assert stats.max_gap_s > 0.0

    def test_contact_consistent_with_budget(self, sat_analysis_small):
        stats = site_pass_statistics(sat_analysis_small, "epb-0")
        budget = sat_analysis_small.budget("epb-0")
        expected = budget.usable.any(axis=0).sum() * 60.0  # 60 s cadence
        assert stats.total_contact_s == pytest.approx(expected)


class TestCoverageGaps:
    def test_matches_all_pairs_mask(self, sat_analysis_small):
        stats = coverage_gaps(sat_analysis_small)
        mask = sat_analysis_small.all_pairs_connected()
        assert stats.total_contact_s == pytest.approx(mask.sum() * 60.0)

    def test_gap_dominates_small_constellation(self, sat_analysis_small):
        """12 satellites leave multi-minute regional outages."""
        stats = coverage_gaps(sat_analysis_small)
        assert stats.max_gap_s > 600.0
