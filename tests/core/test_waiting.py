"""Tests for the waiting-time analysis, including the analytic/Monte Carlo
cross-check."""

import numpy as np
import pytest

from repro.core.waiting import (
    WaitingTimeResult,
    sample_waiting_times,
    waiting_time_analysis,
)
from repro.errors import ValidationError


def _mask(pattern: str) -> np.ndarray:
    return np.array([c == "1" for c in pattern])


class TestAnalyticForm:
    def test_full_coverage_no_wait(self):
        times = np.arange(10.0)
        result = waiting_time_analysis(times, np.ones(10, dtype=bool))
        assert result == WaitingTimeResult(0.0, 0.0, 0.0, 0.0)

    def test_single_gap_closed_form(self):
        """One gap of length g in horizon T: E[W] = g^2 / (2T)."""
        times = np.arange(10.0)
        mask = _mask("1111100000")
        # Gap: [5, 10) wraps onto nothing (mask starts True), length 5.
        result = waiting_time_analysis(times, mask, horizon_s=10.0)
        assert result.mean_wait_s == pytest.approx(25.0 / 20.0)
        assert result.worst_wait_s == pytest.approx(5.0)
        assert result.blocked_fraction == pytest.approx(0.5)
        assert result.mean_wait_given_blocked_s == pytest.approx(2.5)

    def test_wraparound_gap_merged(self):
        """Trailing + leading gaps merge under the periodic schedule."""
        times = np.arange(10.0)
        mask = _mask("0011111100")
        result = waiting_time_analysis(times, mask, horizon_s=10.0)
        # One effective gap of length 4 (2 leading + 2 trailing).
        assert result.worst_wait_s == pytest.approx(4.0)
        assert result.mean_wait_s == pytest.approx(16.0 / 20.0)

    def test_multiple_gaps_sum_of_squares(self):
        times = np.arange(12.0)
        mask = _mask("110011001100")
        result = waiting_time_analysis(times, mask, horizon_s=12.0)
        # Gaps: [2,4), [6,8), [10,12)+wrap-none (mask starts True) -> 3 gaps of 2.
        assert result.mean_wait_s == pytest.approx(3 * 4.0 / 24.0)

    def test_never_covered_rejected(self):
        times = np.arange(5.0)
        with pytest.raises(ValidationError):
            waiting_time_analysis(times, np.zeros(5, dtype=bool))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            waiting_time_analysis(np.array([0.0]), np.array([True]))


class TestMonteCarloCrossCheck:
    def test_analytic_matches_sampling(self):
        rng = np.random.default_rng(5)
        times = np.arange(200.0)
        mask = rng.random(200) < 0.6
        mask[0] = True  # ensure some coverage
        analytic = waiting_time_analysis(times, mask, horizon_s=200.0)
        waits = sample_waiting_times(times, mask, 200_000, seed=7, horizon_s=200.0)
        assert waits.mean() == pytest.approx(analytic.mean_wait_s, rel=0.05)
        assert waits.max() <= analytic.worst_wait_s + 1e-9

    def test_sampling_zero_when_fully_covered(self):
        times = np.arange(10.0)
        waits = sample_waiting_times(times, np.ones(10, dtype=bool), 100, seed=1)
        assert waits.max() == 0.0

    def test_sampling_validation(self):
        times = np.arange(10.0)
        with pytest.raises(ValidationError):
            sample_waiting_times(times, np.zeros(10, dtype=bool), 10)
        with pytest.raises(ValidationError):
            sample_waiting_times(times, np.ones(10, dtype=bool), 0)


class TestOnRealConstellation:
    def test_space_ground_waits_minutes_scale(self, sat_analysis_small):
        """With 12 satellites the mean wait is minutes, the worst tens of
        minutes — the operational meaning of 6 % coverage."""
        mask = sat_analysis_small.all_pairs_connected()
        if not mask.any():
            pytest.skip("no coverage in the small fixture window")
        result = waiting_time_analysis(sat_analysis_small.times_s, mask)
        assert result.mean_wait_s > 60.0
        assert result.worst_wait_s > result.mean_wait_s
