"""Tests for the fast constellation-sweep engine."""

import numpy as np
import pytest

from repro.core.analysis import SpaceGroundAnalysis
from repro.core.coverage import constellation_coverage_sweep
from repro.core.sweeps import run_constellation_sweep
from repro.channels.presets import paper_satellite_fso
from repro.data.ground_nodes import all_ground_nodes
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def small_sweep(day_eph):
    return run_constellation_sweep(
        sizes=[6, 18, 36],
        ephemeris=day_eph,
        step_s=300.0,
        n_requests=20,
        n_time_steps=20,
        seed=5,
    )


@pytest.fixture(scope="module")
def day_eph():
    from repro.orbits.ephemeris import generate_movement_sheet
    from repro.orbits.walker import qntn_constellation

    return generate_movement_sheet(qntn_constellation(36), duration_s=86400.0, step_s=300.0)


class TestCumulativeCoverage:
    def test_row_k_matches_prefix_analysis(self, day_eph, sites):
        """Cumulative masks equal per-prefix recomputation."""
        full = SpaceGroundAnalysis(day_eph, sites, paper_satellite_fso())
        cumulative = full.cumulative_all_pairs_connected()
        for n in (6, 18, 36):
            prefix = SpaceGroundAnalysis(
                day_eph.subset(range(n)), sites, paper_satellite_fso()
            )
            np.testing.assert_array_equal(cumulative[n - 1], prefix.all_pairs_connected())

    def test_monotone_in_satellite_axis(self, day_eph, sites):
        analysis = SpaceGroundAnalysis(day_eph, sites, paper_satellite_fso())
        cumulative = analysis.cumulative_all_pairs_connected()
        # Adding a satellite can only turn False -> True.
        assert not np.any(cumulative[:-1] & ~cumulative[1:])


class TestRunConstellationSweep:
    def test_point_structure(self, small_sweep):
        assert small_sweep.sizes == [6, 18, 36]
        assert len(small_sweep.coverage_percentages) == 3
        assert len(small_sweep.served_percentages) == 3
        assert len(small_sweep.mean_fidelities) == 3

    def test_coverage_monotone(self, small_sweep):
        assert small_sweep.coverage_percentages == sorted(small_sweep.coverage_percentages)

    def test_matches_slow_coverage_sweep(self, day_eph, sites, small_sweep):
        slow = constellation_coverage_sweep(
            [6, 18, 36],
            sites=sites,
            ephemeris_factory=lambda n: day_eph.subset(range(n)),
            step_s=300.0,
        )
        for fast_point, slow_result in zip(small_sweep.points, slow):
            assert fast_point.coverage.percentage == pytest.approx(slow_result.percentage)

    def test_matches_architecture_evaluate(self, day_eph):
        """The sweep's per-size service matches a standalone evaluation."""
        from repro.core.architecture import SpaceGroundArchitecture

        sweep = run_constellation_sweep(
            sizes=[36],
            ephemeris=day_eph,
            step_s=300.0,
            n_requests=20,
            n_time_steps=20,
            seed=5,
        )
        arch = SpaceGroundArchitecture(
            36, duration_s=86400.0, step_s=300.0, ephemeris=day_eph
        )
        result = arch.evaluate(n_requests=20, n_time_steps=20, seed=5)
        point = sweep.points[0]
        assert point.coverage.percentage == pytest.approx(result.coverage_percentage)
        assert point.service.served_fraction == pytest.approx(
            result.service.served_fraction
        )
        assert point.service.mean_fidelity == pytest.approx(result.mean_fidelity)

    def test_rejects_unsorted_sizes(self, day_eph):
        with pytest.raises(ValidationError):
            run_constellation_sweep(sizes=[36, 6], ephemeris=day_eph)

    def test_rejects_empty_sizes(self, day_eph):
        with pytest.raises(ValidationError):
            run_constellation_sweep(sizes=[], ephemeris=day_eph)

    def test_rejects_small_ephemeris(self, small_ephemeris):
        with pytest.raises(ValidationError):
            run_constellation_sweep(sizes=[36], ephemeris=small_ephemeris)
