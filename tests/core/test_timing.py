"""Tests for latency and throughput models."""

import math

import numpy as np
import pytest

from repro.constants import FIBER_REFRACTIVE_INDEX, SPEED_OF_LIGHT_KM_S
from repro.core.timing import (
    EntanglementRateModel,
    PathTiming,
    link_latency_s,
    path_timing,
)
from repro.errors import ValidationError


class TestLinkLatency:
    def test_free_space_speed_of_light(self):
        assert link_latency_s(SPEED_OF_LIGHT_KM_S) == pytest.approx(1.0)

    def test_fiber_slower_by_group_index(self):
        assert link_latency_s(100.0, "fiber") == pytest.approx(
            FIBER_REFRACTIVE_INDEX * link_latency_s(100.0, "free_space")
        )

    def test_satellite_vs_hap_latency_gap(self):
        """Section II-D: satellites pay a large latency penalty over HAPs."""
        sat = link_latency_s(1000.0)  # typical satellite slant
        hap = link_latency_s(78.0)  # typical HAP slant
        assert sat / hap > 10.0

    def test_zero_distance(self):
        assert link_latency_s(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            link_latency_s(-1.0)

    def test_rejects_unknown_medium(self):
        with pytest.raises(ValidationError):
            link_latency_s(1.0, "vacuum_tube")


class TestPathTiming:
    def test_handshake_sum(self):
        t = PathTiming(0.003, 0.007)
        assert t.handshake_s == pytest.approx(0.010)

    def test_relay_path(self):
        timing = path_timing((600.0, 900.0))
        assert timing.photon_time_s == pytest.approx(link_latency_s(900.0))
        assert timing.classical_confirm_s == pytest.approx(
            link_latency_s(600.0) + link_latency_s(900.0)
        )

    def test_mixed_media(self):
        timing = path_timing([50.0, 50.0], media=["fiber", "free_space"])
        assert timing.photon_time_s == pytest.approx(link_latency_s(50.0, "fiber"))

    def test_rejects_wrong_leg_count(self):
        with pytest.raises(ValidationError):
            path_timing([100.0])


class TestEntanglementRateModel:
    def test_success_probability_scaling(self):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=0.5)
        assert model.success_probability(0.8) == pytest.approx(0.8 * 0.25)

    def test_pair_rate_linear_in_eta(self):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=1.0)
        assert model.pair_rate_hz(0.5) == pytest.approx(5e5)

    def test_vectorized(self):
        model = EntanglementRateModel()
        rates = model.pair_rate_hz(np.array([0.2, 0.9]))
        assert rates.shape == (2,)
        assert rates[1] > rates[0]

    def test_time_to_first_pair(self):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=1.0)
        timing = PathTiming(0.001, 0.002)
        t = model.time_to_first_pair_s(0.5, timing)
        assert t == pytest.approx(1.0 / 5e5 + 0.003)

    def test_dead_path_never_delivers(self):
        model = EntanglementRateModel()
        assert math.isinf(model.time_to_first_pair_s(0.0))

    def test_pairs_per_window(self):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=1.0)
        assert model.pairs_per_window(0.5, 10.0) == pytest.approx(5e6)

    def test_rejects_bad_eta(self):
        with pytest.raises(ValidationError):
            EntanglementRateModel().success_probability(1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            EntanglementRateModel().pairs_per_window(0.5, -1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            EntanglementRateModel(source_rate_hz=0.0)
        with pytest.raises(ValidationError):
            EntanglementRateModel(detector_efficiency=1.2)
