"""Tests for served-request and fidelity evaluation (Figs. 7-8)."""

import math

import numpy as np
import pytest

from repro.core.evaluation import ServiceResult, evaluate_requests, evaluation_time_indices
from repro.core.requests import generate_requests
from repro.errors import ValidationError


class TestEvaluationTimeIndices:
    def test_spread_over_horizon(self):
        idx = evaluation_time_indices(2880, 100)
        assert idx.size == 100
        assert idx[0] == 0
        assert idx[-1] == 2879
        assert np.all(np.diff(idx) > 0)

    def test_fewer_samples_than_steps(self):
        idx = evaluation_time_indices(10, 100)
        np.testing.assert_array_equal(idx, np.arange(10))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            evaluation_time_indices(0, 10)
        with pytest.raises(ValidationError):
            evaluation_time_indices(10, 0)

    def test_indices_strictly_increasing_exhaustive(self):
        """No duplicate evaluation steps for any (n_samples, n_steps).

        Guards the documented invariant: when steps < samples the
        linspace stride exceeds one, so integer truncation can never
        emit the same index twice. Scans every grid up to 300 samples
        plus the paper-scale grids.
        """
        for n_samples in range(1, 301):
            for n_steps in range(1, n_samples + 2):
                idx = evaluation_time_indices(n_samples, n_steps)
                assert idx.size == min(n_samples, n_steps)
                assert np.all(np.diff(idx) >= 1)
                assert 0 <= idx[0] and idx[-1] <= n_samples - 1
        for n_samples, n_steps in [(2880, 100), (2880, 2879), (86401, 100)]:
            idx = evaluation_time_indices(n_samples, n_steps)
            assert idx.size == n_steps
            assert np.unique(idx).size == idx.size


class TestEvaluateRequestsSpace(object):
    def test_result_structure(self, sat_analysis_small, sites):
        requests = generate_requests(sites, 20, seed=1)
        result = evaluate_requests(sat_analysis_small, requests, n_time_steps=10)
        assert isinstance(result, ServiceResult)
        assert result.n_requests == 20
        assert result.n_time_steps == 10
        assert 0.0 <= result.served_fraction <= 1.0
        assert len(result.served_per_step) == 10

    def test_fidelities_bounded(self, sat_analysis_small, sites):
        requests = generate_requests(sites, 20, seed=1)
        result = evaluate_requests(sat_analysis_small, requests, n_time_steps=10)
        for f in result.fidelities:
            assert 0.5 < f <= 1.0

    def test_fidelity_convention_changes_values(self, sat_analysis_small, sites):
        requests = generate_requests(sites, 20, seed=1)
        sqrt_result = evaluate_requests(
            sat_analysis_small, requests, n_time_steps=10, fidelity_convention="sqrt"
        )
        sq_result = evaluate_requests(
            sat_analysis_small, requests, n_time_steps=10, fidelity_convention="squared"
        )
        if sqrt_result.fidelities:
            assert sq_result.mean_fidelity < sqrt_result.mean_fidelity

    def test_served_percentage_property(self, sat_analysis_small, sites):
        requests = generate_requests(sites, 10, seed=2)
        result = evaluate_requests(sat_analysis_small, requests, n_time_steps=5)
        assert result.served_percentage == pytest.approx(100.0 * result.served_fraction)

    def test_rejects_empty_requests(self, sat_analysis_small):
        with pytest.raises(ValidationError):
            evaluate_requests(sat_analysis_small, [])


class TestQueueCapacity:
    def test_finite_queue_drops_requests(self, sites):
        """Relaxing the infinite-queue assumption caps served requests."""
        from repro.channels.presets import paper_hap_fso
        from repro.core.analysis import AirGroundAnalysis
        from repro.constants import (
            QNTN_HAP_ALTITUDE_KM,
            QNTN_HAP_LAT_DEG,
            QNTN_HAP_LON_DEG,
        )

        analysis = AirGroundAnalysis(
            sites,
            paper_hap_fso(),
            hap_lat_deg=QNTN_HAP_LAT_DEG,
            hap_lon_deg=QNTN_HAP_LON_DEG,
            hap_alt_km=QNTN_HAP_ALTITUDE_KM,
        )
        requests = generate_requests(sites, 20, seed=3)
        unlimited = evaluate_requests(analysis, requests, n_time_steps=1)
        limited = evaluate_requests(analysis, requests, n_time_steps=1, queue_capacity=5)
        assert unlimited.served_fraction == pytest.approx(1.0)
        assert unlimited.queue_drops == 0
        assert limited.served_fraction == pytest.approx(0.25)
        assert limited.queue_drops == 15


class TestAirGroundEvaluation:
    def test_hap_serves_everything(self, sites):
        from repro.channels.presets import paper_hap_fso
        from repro.core.analysis import AirGroundAnalysis
        from repro.constants import (
            QNTN_HAP_ALTITUDE_KM,
            QNTN_HAP_LAT_DEG,
            QNTN_HAP_LON_DEG,
        )

        analysis = AirGroundAnalysis(
            sites,
            paper_hap_fso(),
            hap_lat_deg=QNTN_HAP_LAT_DEG,
            hap_lon_deg=QNTN_HAP_LON_DEG,
            hap_alt_km=QNTN_HAP_ALTITUDE_KM,
            times_s=np.arange(5.0),
        )
        requests = generate_requests(sites, 50, seed=4)
        result = evaluate_requests(analysis, requests, n_time_steps=5)
        assert result.served_fraction == pytest.approx(1.0)
        assert result.mean_fidelity == pytest.approx(0.98, abs=0.01)
