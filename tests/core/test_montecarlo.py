"""Tests for the weather Monte Carlo study."""

import math

import pytest

from repro.channels.atmosphere import WeatherCondition
from repro.core.montecarlo import run_weather_trial, weather_study
from repro.errors import ValidationError


def _trials_equal(a, b) -> bool:
    """Field-wise equality that treats NaN fidelity as equal to NaN."""
    return (
        a.condition is b.condition
        and a.served_fraction == b.served_fraction
        and (a.mean_fidelity == b.mean_fidelity
             or (math.isnan(a.mean_fidelity) and math.isnan(b.mean_fidelity)))
    )


class TestRunWeatherTrial:
    def test_deterministic_given_seed(self):
        a = run_weather_trial(10, seed=5)
        b = run_weather_trial(10, seed=5)
        assert _trials_equal(a, b)

    def test_served_fraction_is_all_or_nothing(self):
        """Weather is regional and static within a trial: either every
        inter-LAN request is served or none are."""
        for seed in range(8):
            trial = run_weather_trial(10, seed=seed)
            assert trial.served_fraction in (0.0, 1.0)

    def test_clear_weather_serves_everything(self):
        # Find a clear-weather trial and check its outcome.
        for seed in range(30):
            trial = run_weather_trial(5, seed=seed)
            if trial.condition is WeatherCondition.CLEAR:
                assert trial.served_fraction == 1.0
                assert trial.mean_fidelity > 0.97
                return
        pytest.fail("no clear-weather trial in 30 seeds")

    def test_fog_serves_nothing(self):
        for seed in range(200):
            trial = run_weather_trial(5, seed=seed)
            if trial.condition is WeatherCondition.FOG:
                assert trial.served_fraction == 0.0
                assert math.isnan(trial.mean_fidelity)
                return
        pytest.fail("no fog trial in 200 seeds")

    def test_rejects_bad_requests(self):
        with pytest.raises(ValidationError):
            run_weather_trial(0)


class TestWeatherStudy:
    def test_aggregates(self):
        result = weather_study(n_trials=20, n_requests=10, seed=11)
        assert len(result.trials) == 20
        assert 0.0 <= result.availability <= 1.0
        assert sum(result.condition_counts().values()) == 20

    def test_weather_breaks_the_ideal_100_percent(self):
        """The paper's 100 % air-ground availability does not survive
        realistic weather (Section V's warning, quantified)."""
        result = weather_study(n_trials=60, n_requests=10, seed=11)
        assert result.availability < 1.0
        assert result.availability > 0.4  # clear/haze still dominate

    def test_fidelity_when_available_stays_high(self):
        result = weather_study(n_trials=40, n_requests=10, seed=11)
        assert result.mean_fidelity_when_available > 0.9

    def test_deterministic(self):
        a = weather_study(n_trials=10, n_requests=5, seed=3)
        b = weather_study(n_trials=10, n_requests=5, seed=3)
        assert all(_trials_equal(x, y) for x, y in zip(a.trials, b.trials))

    def test_rejects_bad_trials(self):
        with pytest.raises(ValidationError):
            weather_study(n_trials=0)
