"""Tests for relay-handover statistics."""

import numpy as np
import pytest

from repro.core.handover import HandoverStatistics, handover_statistics, relay_assignment
from repro.errors import ValidationError


class TestRelayAssignment:
    def test_length_matches_times(self, sat_analysis_small):
        assignment = relay_assignment(sat_analysis_small, "ttu-0", "epb-0")
        assert assignment.shape == (sat_analysis_small.n_times,)

    def test_minus_one_iff_unserved(self, sat_analysis_small):
        assignment = relay_assignment(sat_analysis_small, "ttu-0", "epb-0")
        for t in range(0, sat_analysis_small.n_times, 10):
            hit = sat_analysis_small.best_relay("ttu-0", "epb-0", t)
            if hit is None:
                assert assignment[t] == -1
            else:
                assert assignment[t] == hit[0]


class TestHandoverStatistics:
    def test_consistency_with_assignment(self, sat_analysis_small):
        stats = handover_statistics(sat_analysis_small, "ttu-0", "ornl-0")
        assignment = relay_assignment(sat_analysis_small, "ttu-0", "ornl-0")
        assert stats.service_fraction == pytest.approx((assignment >= 0).mean())
        assert stats.n_relays_used == len({int(v) for v in assignment if v >= 0})

    def test_transitions_balance(self, sat_analysis_small):
        """Acquisitions and outages differ by at most one."""
        stats = handover_statistics(sat_analysis_small, "ttu-0", "epb-0")
        assert abs(stats.n_acquisitions - stats.n_outages) <= 1

    def test_dwell_bounded_by_horizon(self, sat_analysis_small):
        stats = handover_statistics(sat_analysis_small, "epb-0", "ornl-0")
        horizon = float(
            sat_analysis_small.times_s[-1] - sat_analysis_small.times_s[0]
        ) + 60.0
        assert 0.0 <= stats.mean_dwell_s <= stats.max_dwell_s <= horizon

    def test_synthetic_sequence(self, sat_analysis_small, monkeypatch):
        """Pin the counting logic on a hand-built assignment."""
        seq = np.array([-1, 3, 3, 5, -1, -1, 2, 2, 2, -1])

        def fake_best_relay(src, dst, t, eps=None, n_satellites=None):
            v = int(seq[t])
            return None if v < 0 else (v, 0.8)

        monkeypatch.setattr(sat_analysis_small, "best_relay", fake_best_relay)
        monkeypatch.setattr(
            type(sat_analysis_small), "n_times", property(lambda self: 10)
        )
        times = np.arange(10.0) * 60.0
        monkeypatch.setattr(
            type(sat_analysis_small), "times_s", property(lambda self: times)
        )
        stats = handover_statistics(sat_analysis_small, "a", "b")
        assert stats.n_handovers == 1      # 3 -> 5
        assert stats.n_acquisitions == 2   # -1 -> 3, -1 -> 2
        assert stats.n_outages == 2        # 5 -> -1, 2 -> -1
        assert stats.n_relays_used == 3
        assert stats.max_dwell_s == pytest.approx(180.0)  # the 2,2,2 run
        assert stats.service_fraction == pytest.approx(0.6)

    def test_rejects_single_sample(self, sites, small_ephemeris):
        from repro.channels.presets import paper_satellite_fso
        from repro.core.analysis import SpaceGroundAnalysis

        one = small_ephemeris.at_time_indices([0])
        analysis = SpaceGroundAnalysis(one, sites, paper_satellite_fso())
        with pytest.raises(ValidationError):
            handover_statistics(analysis, "ttu-0", "epb-0")


class TestHapHasNoHandovers:
    def test_hover_platform_never_hands_over(self):
        """Framing check: a hovering relay's assignment never changes, so
        the air-ground architecture has zero relay churn by construction."""
        stats = HandoverStatistics(0, 1, 0, 1, 86400.0, 86400.0, 1.0)
        assert stats.n_handovers == 0
        assert stats.service_fraction == 1.0
