"""Tests for the architecture classes (fast, reduced-size configurations)."""

import numpy as np
import pytest

from repro.core.architecture import (
    AirGroundArchitecture,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.errors import ValidationError
from repro.utils.intervals import Interval


@pytest.fixture(scope="module")
def small_space(request):
    """A 12-satellite space-ground architecture over a 2-hour horizon."""
    return SpaceGroundArchitecture(12, duration_s=7200.0, step_s=120.0)


@pytest.fixture(scope="module")
def small_air():
    return AirGroundArchitecture(duration_s=7200.0, step_s=120.0)


class TestSpaceGroundArchitecture:
    def test_ephemeris_generated_lazily(self, small_space):
        eph = small_space.ephemeris
        assert eph.n_platforms == 12
        assert small_space.ephemeris is eph  # cached

    def test_evaluate_structure(self, small_space):
        result = small_space.evaluate(n_requests=10, n_time_steps=10, seed=1)
        assert result.name == "Space-Ground"
        assert 0.0 <= result.coverage_percentage <= 100.0
        assert 0.0 <= result.served_percentage <= 100.0

    def test_coverage_less_than_full_for_small_constellation(self, small_space):
        result = small_space.evaluate(n_requests=10, n_time_steps=10, seed=1)
        assert result.coverage_percentage < 100.0

    def test_deterministic_given_seed(self, small_space):
        a = small_space.evaluate(n_requests=10, n_time_steps=5, seed=9)
        b = small_space.evaluate(n_requests=10, n_time_steps=5, seed=9)
        assert a.served_percentage == b.served_percentage
        assert a.service.fidelities == b.service.fidelities

    def test_external_ephemeris_prefix(self, day_ephemeris_36):
        arch = SpaceGroundArchitecture(
            6, duration_s=86400.0, step_s=120.0, ephemeris=day_ephemeris_36
        )
        assert arch.ephemeris.n_platforms == 6

    def test_external_ephemeris_too_small_rejected(self, small_ephemeris):
        with pytest.raises(ValidationError):
            SpaceGroundArchitecture(24, ephemeris=small_ephemeris)

    def test_rejects_zero_satellites(self):
        with pytest.raises(ValidationError):
            SpaceGroundArchitecture(0)

    def test_build_simulator_host_counts(self, small_space):
        sim = small_space.build_simulator()
        assert sim.network.n_hosts == 31 + 12


class TestAirGroundArchitecture:
    def test_paper_ideal_results(self, small_air):
        result = small_air.evaluate(n_requests=20, n_time_steps=5, seed=1)
        assert result.coverage_percentage == pytest.approx(100.0)
        assert result.served_percentage == pytest.approx(100.0)
        assert result.mean_fidelity == pytest.approx(0.98, abs=0.01)

    def test_duty_cycle_reduces_coverage(self):
        arch = AirGroundArchitecture(
            duration_s=7200.0,
            step_s=120.0,
            operational_windows=[Interval(0.0, 3600.0)],
        )
        result = arch.evaluate(n_requests=10, n_time_steps=10, seed=1)
        assert result.coverage_percentage == pytest.approx(50.0, abs=3.0)
        assert result.served_percentage < 100.0

    def test_build_simulator(self, small_air):
        sim = small_air.build_simulator()
        assert "hap-0" in sim.network.host_names
        out = sim.serve_request("ttu-0", "ornl-0", 0.0)
        assert out.served


class TestHybridArchitecture:
    def test_hybrid_beats_duty_cycled_hap_alone(self, day_ephemeris_36):
        air = AirGroundArchitecture(
            duration_s=86400.0,
            step_s=120.0,
            operational_windows=[Interval(0.0, 21600.0)],  # 25% duty
        )
        space = SpaceGroundArchitecture(
            36, duration_s=86400.0, step_s=120.0, ephemeris=day_ephemeris_36
        )
        hybrid = HybridArchitecture(space, air)
        h = hybrid.evaluate(n_requests=10, n_time_steps=20, seed=2)
        a = air.evaluate(n_requests=10, n_time_steps=20, seed=2)
        s = space.evaluate(n_requests=10, n_time_steps=20, seed=2)
        assert h.coverage_percentage >= max(a.coverage_percentage, s.coverage_percentage)
        assert h.served_percentage >= max(a.served_percentage, s.served_percentage)

    def test_rejects_mismatched_horizons(self):
        space = SpaceGroundArchitecture(6, duration_s=7200.0, step_s=60.0)
        air = AirGroundArchitecture(duration_s=3600.0, step_s=60.0)
        with pytest.raises(ValidationError):
            HybridArchitecture(space, air)
