"""Tests for the Bellman–Ford implementations of Algorithm 1."""

import math

import pytest

from repro.errors import NoPathError, RoutingError
from repro.routing.bellman_ford import bellman_ford, build_routing_tables, shortest_path
from repro.routing.metrics import edge_cost

TRIANGLE = {
    "a": {"b": 0.9, "c": 0.5},
    "b": {"a": 0.9, "c": 0.9},
    "c": {"a": 0.5, "b": 0.9},
}

DISCONNECTED = {
    "a": {"b": 0.8},
    "b": {"a": 0.8},
    "island": {},
}


class TestBellmanFord:
    def test_direct_vs_two_hop_tradeoff(self):
        """a->c direct has eta 0.5 (cost 2); a->b->c costs ~2.22: direct wins."""
        result = bellman_ford(TRIANGLE, "a")
        assert result.path_to("c") == ["a", "c"]

    def test_relay_preferred_when_direct_is_weak(self):
        graph = {
            "a": {"b": 0.95, "c": 0.3},
            "b": {"a": 0.95, "c": 0.95},
            "c": {"a": 0.3, "b": 0.95},
        }
        # direct cost 1/0.3 = 3.33 > two-hop 2/0.95 = 2.11.
        result = bellman_ford(graph, "a")
        assert result.path_to("c") == ["a", "b", "c"]

    def test_source_cost_zero(self):
        result = bellman_ford(TRIANGLE, "a")
        assert result.costs["a"] == 0.0
        assert result.predecessors["a"] is None

    def test_costs_are_edge_sums(self):
        result = bellman_ford(TRIANGLE, "a")
        assert result.costs["b"] == pytest.approx(edge_cost(0.9))

    def test_unreachable_infinite(self):
        result = bellman_ford(DISCONNECTED, "a")
        assert math.isinf(result.costs["island"])
        with pytest.raises(NoPathError):
            result.path_to("island")

    def test_unknown_source_rejected(self):
        with pytest.raises(RoutingError):
            bellman_ford(TRIANGLE, "ghost")

    def test_line_graph_path(self):
        line = {
            "n0": {"n1": 0.9},
            "n1": {"n0": 0.9, "n2": 0.8},
            "n2": {"n1": 0.8, "n3": 0.7},
            "n3": {"n2": 0.7},
        }
        result = bellman_ford(line, "n0")
        assert result.path_to("n3") == ["n0", "n1", "n2", "n3"]


class TestShortestPath:
    def test_returns_path_and_product(self):
        path, eta = shortest_path(TRIANGLE, "a", "b")
        assert path == ["a", "b"]
        assert eta == pytest.approx(0.9)

    def test_multihop_product(self):
        graph = {
            "a": {"b": 0.95},
            "b": {"a": 0.95, "c": 0.9},
            "c": {"b": 0.9},
        }
        path, eta = shortest_path(graph, "a", "c")
        assert path == ["a", "b", "c"]
        assert eta == pytest.approx(0.95 * 0.9)

    def test_no_path(self):
        with pytest.raises(NoPathError):
            shortest_path(DISCONNECTED, "a", "island")

    def test_source_equals_destination(self):
        path, eta = shortest_path(TRIANGLE, "a", "a")
        assert path == ["a"]
        assert eta == 1.0


class TestRoutingTables:
    def test_tables_match_single_source_costs(self):
        """The literal Algorithm 1 agrees with the relaxation form."""
        tables = build_routing_tables(TRIANGLE)
        for source in TRIANGLE:
            reference = bellman_ford(TRIANGLE, source)
            for dest in TRIANGLE:
                assert tables[source].cost(dest) == pytest.approx(
                    reference.costs[dest], abs=1e-9
                )

    def test_tables_on_disconnected_graph(self):
        tables = build_routing_tables(DISCONNECTED)
        assert math.isinf(tables["a"].cost("island"))
        assert not tables["a"].get("island").reachable

    def test_self_entry(self):
        tables = build_routing_tables(TRIANGLE)
        entry = tables["a"].get("a")
        assert entry.cost == 0.0
        assert entry.via is None

    def test_neighbor_via_is_direct(self):
        tables = build_routing_tables(TRIANGLE)
        assert tables["a"].get("b").via == "b"

    def test_random_graph_equivalence(self, rng):
        """Both implementations agree on random connected graphs."""
        n = 12
        names = [f"v{i}" for i in range(n)]
        graph = {name: {} for name in names}
        # Ring for connectivity plus random chords.
        for i in range(n):
            j = (i + 1) % n
            eta = float(rng.uniform(0.1, 1.0))
            graph[names[i]][names[j]] = eta
            graph[names[j]][names[i]] = eta
        for _ in range(10):
            i, j = rng.choice(n, size=2, replace=False)
            eta = float(rng.uniform(0.1, 1.0))
            graph[names[i]][names[j]] = eta
            graph[names[j]][names[i]] = eta
        tables = build_routing_tables(graph)
        for source in names[:4]:
            reference = bellman_ford(graph, source)
            for dest in names:
                assert tables[source].cost(dest) == pytest.approx(
                    reference.costs[dest], abs=1e-9
                )
