"""Tests for the per-node routing-table structure."""

import math

import pytest

from repro.errors import RoutingError
from repro.routing.table import RouteEntry, RoutingTable


class TestRouteEntry:
    def test_reachable(self):
        assert RouteEntry(1.5, "b").reachable
        assert not RouteEntry(math.inf, None).reachable


class TestRoutingTable:
    def test_set_get(self):
        table = RoutingTable("a")
        table.set("b", 2.0, "b")
        assert table.cost("b") == 2.0
        assert table.get("b").via == "b"

    def test_overwrite(self):
        table = RoutingTable("a")
        table.set("b", 2.0, "b")
        table.set("b", 1.5, "c")
        assert table.get("b") == RouteEntry(1.5, "c")

    def test_missing_destination(self):
        with pytest.raises(RoutingError, match="no routing entry"):
            RoutingTable("a").get("zzz")

    def test_contains_and_len(self):
        table = RoutingTable("a")
        table.set("b", 1.0, "b")
        assert "b" in table
        assert "c" not in table
        assert len(table) == 1
        assert table.destinations() == ["b"]
