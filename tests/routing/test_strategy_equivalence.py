"""Differential harness for the multipath strategy (DESIGN.md §16).

The guarantees this file pins, on the full 108-satellite paper day:

* **k = 1 is the identity.** Mounting the k-shortest strategy with
  ``k = 1`` leaves every backend's outcome stream bit-identical to the
  legacy Bellman–Ford router — served set, paths, etas, fidelities and
  per-cause denial totals all match exactly.
* **k >= 2 is monotone.** Strict-path service is untouched: every
  request the baseline serves stays served over the *same* path with
  the *same* fidelity, and the rescue layer only converts denials into
  purified service. On this workload the rescue count is strictly
  positive, so the monotonicity leg is not vacuous.
* **Streaming == batch** survives the rescue layer on every backend
  (the batch tail and the per-request tail are distinct code paths).
* **Shard determinism.** Under the active strategy the sharded replay
  is independent of worker count (0 / 1 / 2 / 4), including the
  strategy-specific denial causes.
"""

import asyncio
import collections

import pytest

from repro.routing.strategies import StrategyConfig
from repro.serve import (
    ENGINE_KINDS,
    ServeServer,
    ServerConfig,
    build_engine,
    outcomes_equal,
    serve_stream_sharded,
)

K1 = StrategyConfig(router="k-shortest", k=1)
K2 = StrategyConfig(router="k-shortest", k=2)


def cause_totals(outcomes):
    return collections.Counter(o.cause for o in outcomes if not o.served)


@pytest.mark.parametrize("kind", ENGINE_KINDS)
def test_k1_bit_identical_to_legacy_router(kind, replays, day_stream_108):
    """The strategy at k=1 never intervenes: outcomes match field-wise."""
    legacy = replays(kind)
    routed = replays(kind, K1)
    assert len(legacy) == len(routed) == len(day_stream_108)
    for a, b in zip(legacy, routed):
        assert outcomes_equal(a, b), (a, b)
    assert cause_totals(legacy) == cause_totals(routed)


@pytest.mark.parametrize("kind", ENGINE_KINDS)
def test_k2_service_is_monotone_over_baseline(kind, replays):
    """Baseline service survives unchanged; rescues only add service."""
    legacy = replays(kind)
    routed = replays(kind, K2)
    n_rescued = 0
    for base, multi in zip(legacy, routed):
        if base.served:
            # The strict path is never memory-gated or re-routed.
            assert multi.served
            assert multi.path == base.path
            assert multi.path_eta == base.path_eta
            assert abs(multi.fidelity - base.fidelity) <= 1e-12
            assert not multi.purified
        elif multi.served:
            n_rescued += 1
            assert multi.purified
            assert multi.n_paths >= 2
            assert multi.fidelity >= 0.0
    assert n_rescued > 0, "workload never exercised the rescue layer"
    n_base = sum(o.served for o in legacy)
    n_multi = sum(o.served for o in routed)
    assert n_multi == n_base + n_rescued


def test_k2_denials_carry_strategy_causes(replays):
    """Unrescued denials attribute route_exhausted / legacy causes only."""
    routed = replays("cached", K2)
    causes = cause_totals(routed)
    assert None not in causes
    allowed = {
        "low_elevation",
        "low_transmissivity",
        "no_route",
        "route_exhausted",
        "memory_full",
        "unknown_node",
    }
    assert set(causes) <= allowed


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_replay_is_worker_count_independent(
    n_workers, replays, day_ephemeris_108, day_stream_108
):
    """Serial == sharded under the active strategy, any pool size."""
    serial = replays("cached", K2)
    pooled = serve_stream_sharded(
        day_ephemeris_108,
        day_stream_108,
        engine="cached",
        strategy=K2,
        n_workers=n_workers,
        n_shards=4,
    )
    assert len(serial) == len(pooled)
    for a, b in zip(serial, pooled):
        assert outcomes_equal(a, b), (a, b)
    assert cause_totals(serial) == cause_totals(pooled)


@pytest.mark.parametrize("kind", ENGINE_KINDS)
def test_streaming_equals_batch_under_strategy(
    kind, replays, day_ephemeris_108, day_stream_108
):
    """The rescue layer preserves the streaming == batch guarantee.

    The memoized replay IS the streamed path (serial sharded replay
    runs through :class:`ServeServer`); the batch side uses a fresh
    engine so the per-request and batch denial tails cannot drift.
    """
    streamed = replays(kind, K2)
    batched = build_engine(kind, day_ephemeris_108, strategy=K2).serve_batch(
        day_stream_108
    )
    assert len(streamed) == len(batched)
    for a, b in zip(streamed, batched):
        assert outcomes_equal(a, b), (a, b)


def test_server_front_end_records_rescue_attrs(day_ephemeris_108, day_stream_108):
    """A direct ServeServer run agrees with the sharded replay and the
    report's cause accounting includes the strategy causes."""
    engine = build_engine("matrix", day_ephemeris_108, strategy=K2)
    server = ServeServer(
        engine,
        config=ServerConfig(queue_depth=len(day_stream_108) + 1, shed_on_full=False),
    )
    report = asyncio.run(server.run(day_stream_108))
    assert report.accounting_ok
    assert report.n_served == sum(o.served for o in report.outcomes)
    assert set(report.cause_counts) == set(cause_totals(report.outcomes))
