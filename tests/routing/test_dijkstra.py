"""Tests for the Dijkstra baseline and its agreement with Bellman–Ford."""

import math

import pytest

from repro.errors import NoPathError, RoutingError
from repro.routing.bellman_ford import bellman_ford
from repro.routing.dijkstra import dijkstra, dijkstra_path


def random_graph(rng, n=15, extra=20):
    names = [f"v{i}" for i in range(n)]
    graph = {name: {} for name in names}
    for i in range(n - 1):
        eta = float(rng.uniform(0.05, 1.0))
        graph[names[i]][names[i + 1]] = eta
        graph[names[i + 1]][names[i]] = eta
    for _ in range(extra):
        i, j = rng.choice(n, size=2, replace=False)
        eta = float(rng.uniform(0.05, 1.0))
        graph[names[i]][names[j]] = eta
        graph[names[j]][names[i]] = eta
    return graph, names


class TestDijkstra:
    def test_agrees_with_bellman_ford_on_random_graphs(self, rng):
        for _ in range(5):
            graph, names = random_graph(rng)
            for source in names[:3]:
                d_costs, _ = dijkstra(graph, source)
                bf = bellman_ford(graph, source)
                for dest in names:
                    assert d_costs[dest] == pytest.approx(bf.costs[dest], abs=1e-9)

    def test_path_and_eta_agree(self, rng):
        graph, names = random_graph(rng)
        from repro.routing.bellman_ford import shortest_path

        p1, eta1 = dijkstra_path(graph, names[0], names[-1])
        p2, eta2 = shortest_path(graph, names[0], names[-1])
        assert eta1 == pytest.approx(eta2)

    def test_unreachable(self):
        graph = {"a": {}, "b": {}}
        costs, _ = dijkstra(graph, "a")
        assert math.isinf(costs["b"])
        with pytest.raises(NoPathError):
            dijkstra_path(graph, "a", "b")

    def test_unknown_source(self):
        with pytest.raises(RoutingError):
            dijkstra({"a": {}}, "ghost")

    def test_trivial_self_path(self):
        path, eta = dijkstra_path({"a": {}}, "a", "a")
        assert path == ["a"]
        assert eta == 1.0
