"""Cross-validation of in-house routing against networkx, plus diagnostics."""

import math

import networkx as nx
import pytest

from repro.errors import NoPathError, RoutingError
from repro.routing.bellman_ford import bellman_ford
from repro.routing.graphtools import (
    ConnectivityReport,
    connectivity_report,
    networkx_path_cost,
    to_networkx,
)
from repro.routing.metrics import edge_cost

TRIANGLE = {
    "a": {"b": 0.9, "c": 0.5},
    "b": {"a": 0.9, "c": 0.9},
    "c": {"a": 0.5, "b": 0.9},
}


class TestToNetworkx:
    def test_nodes_and_edges(self):
        g = to_networkx(TRIANGLE)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3

    def test_edge_attributes(self):
        g = to_networkx(TRIANGLE)
        assert g["a"]["b"]["eta"] == 0.9
        assert g["a"]["b"]["weight"] == pytest.approx(edge_cost(0.9))

    def test_isolated_nodes_kept(self):
        g = to_networkx({"a": {}, "b": {}})
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 0


class TestCrossValidation:
    def test_triangle_agrees(self):
        for src in TRIANGLE:
            ours = bellman_ford(TRIANGLE, src)
            for dst in TRIANGLE:
                assert networkx_path_cost(TRIANGLE, src, dst) == pytest.approx(
                    ours.costs[dst], abs=1e-9
                )

    def test_random_graphs_agree(self, rng):
        """Independent-oracle check: networkx Dijkstra vs our Bellman-Ford."""
        for _ in range(5):
            n = 20
            names = [f"v{i}" for i in range(n)]
            graph = {name: {} for name in names}
            for i in range(n - 1):
                eta = float(rng.uniform(0.05, 1.0))
                graph[names[i]][names[i + 1]] = eta
                graph[names[i + 1]][names[i]] = eta
            for _ in range(25):
                i, j = rng.choice(n, size=2, replace=False)
                eta = float(rng.uniform(0.05, 1.0))
                graph[names[i]][names[j]] = eta
                graph[names[j]][names[i]] = eta
            ours = bellman_ford(graph, names[0])
            for dst in names:
                assert networkx_path_cost(graph, names[0], dst) == pytest.approx(
                    ours.costs[dst], abs=1e-9
                )

    def test_qntn_snapshot_agrees(self, hap_simulator):
        graph = hap_simulator.link_graph(0.0)
        ours = bellman_ford(graph, "ttu-0")
        for dst in ("epb-0", "ornl-5", "hap-0", "ttu-3"):
            assert networkx_path_cost(graph, "ttu-0", dst) == pytest.approx(
                ours.costs[dst], abs=1e-9
            )

    def test_no_path(self):
        with pytest.raises(NoPathError):
            networkx_path_cost({"a": {}, "b": {}}, "a", "b")

    def test_unknown_endpoint(self):
        with pytest.raises(RoutingError):
            networkx_path_cost(TRIANGLE, "a", "ghost")


class TestConnectivityReport:
    def test_triangle_fully_connected(self):
        report = connectivity_report(TRIANGLE)
        assert report.n_components == 1
        assert report.largest_component_size == 3
        assert report.n_articulation_points == 0

    def test_line_has_articulation_point(self):
        line = {"a": {"b": 0.9}, "b": {"a": 0.9, "c": 0.9}, "c": {"b": 0.9}}
        report = connectivity_report(line)
        assert report.n_articulation_points == 1

    def test_lan_condition(self):
        graph = {
            "x1": {"x2": 0.9},
            "x2": {"x1": 0.9},
            "y1": {},
        }
        members = {"x": ["x1", "x2"], "y": ["y1"]}
        report = connectivity_report(graph, members)
        assert not report.lans_connected
        graph["x2"]["y1"] = 0.9
        graph["y1"]["x2"] = 0.9
        assert connectivity_report(graph, members).lans_connected

    def test_hap_network_single_relay_is_articulation_point(self, hap_simulator):
        """The single HAP is the air-ground architecture's SPOF."""
        graph = hap_simulator.link_graph(0.0)
        members = hap_simulator.network.local_networks
        report = connectivity_report(graph, members)
        assert isinstance(report, ConnectivityReport)
        assert report.lans_connected
        assert report.n_components == 1
        g = to_networkx(graph)
        assert "hap-0" in set(nx.articulation_points(g))
