"""Fixtures for the multipath-strategy differential suite.

The equivalence harness runs the full 108-satellite paper constellation
over one day (120 s cadence keeps the movement sheet cheap to build
while preserving the day-long visibility pattern) and replays one
grid-aligned Poisson request stream through every serving backend.
"""

from __future__ import annotations

import pytest

from repro.data.ground_nodes import all_ground_nodes
from repro.network.workload import (
    align_to_grid,
    lans_from_sites,
    poisson_request_stream,
)
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation


@pytest.fixture(scope="session")
def day_ephemeris_108():
    """The paper's 108-satellite constellation over a full day."""
    return generate_movement_sheet(
        qntn_constellation(108), duration_s=86400.0, step_s=120.0
    )


@pytest.fixture(scope="session")
def day_stream_108(day_ephemeris_108):
    """~80 grid-aligned inter-LAN requests spread over the day.

    Rate 1 mHz keeps the per-request direct backend affordable while
    still producing a double-digit rescue count at k=2 (the
    monotonicity tests assert the rescue leg is non-vacuous).
    """
    stream = poisson_request_stream(
        lans_from_sites(all_ground_nodes()),
        rate_hz=0.001,
        duration_s=86400.0,
        seed=11,
    )
    return align_to_grid(stream, day_ephemeris_108.times_s)


@pytest.fixture(scope="session")
def replays(day_ephemeris_108, day_stream_108):
    """Memoized serial replays, keyed ``(kind, strategy)``.

    The direct backend rebuilds its link graph per request (~45 s per
    pass over the day stream), and several tests compare against the
    same baseline — one serial replay per (backend, strategy) point is
    enough for all of them. Pooled replays are never memoized: worker
    independence is exactly what those tests measure.
    """
    from repro.serve import serve_stream_sharded

    memo = {}

    def run(kind, strategy=None):
        key = (kind, strategy)
        if key not in memo:
            memo[key] = serve_stream_sharded(
                day_ephemeris_108,
                day_stream_108,
                engine=kind,
                n_workers=0,
                strategy=strategy,
            )
        return memo[key]

    return run
