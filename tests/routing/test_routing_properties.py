"""Property tests: Bellman–Ford and Dijkstra agree on random graphs.

Both routers minimise the same additive cost ``sum 1/(eta + eps)`` over
strictly positive edge costs, so on any graph they must report the same
reachable set and the same optimal cost per destination (paths may
differ only between exact ties).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoPathError
from repro.routing.bellman_ford import bellman_ford
from repro.routing.dijkstra import dijkstra, dijkstra_path
from repro.routing.metrics import edge_cost, path_edges, path_transmissivity


@st.composite
def graphs(draw):
    """Random undirected graphs with eta-weighted edges on 2..7 nodes."""
    n = draw(st.integers(min_value=2, max_value=7))
    nodes = [f"n{i}" for i in range(n)]
    graph = {node: {} for node in nodes}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if draw(st.booleans()):
                eta = draw(st.floats(min_value=0.01, max_value=1.0))
                graph[a][b] = eta
                graph[b][a] = eta
    return graph


@settings(max_examples=150, deadline=None)
@given(graph=graphs())
def test_same_reachable_set_and_optimal_cost(graph):
    bf = bellman_ford(graph, "n0")
    dj_costs, _ = dijkstra(graph, "n0")
    for node in graph:
        dj_cost = dj_costs.get(node, math.inf)
        assert bf.reachable(node) == math.isfinite(dj_cost)
        if bf.reachable(node):
            assert bf.costs[node] == pytest.approx(dj_cost, rel=1e-9, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_paths_realize_the_reported_costs(graph):
    bf = bellman_ford(graph, "n0")
    for node in graph:
        if not bf.reachable(node):
            with pytest.raises(NoPathError):
                dijkstra_path(graph, "n0", node)
            continue
        bf_path = bf.path_to(node)
        dj_path, dj_eta = dijkstra_path(graph, "n0", node)
        assert bf_path[0] == dj_path[0] == "n0"
        assert bf_path[-1] == dj_path[-1] == node
        bf_cost = sum(edge_cost(eta) for eta in path_edges(graph, bf_path))
        dj_cost = sum(edge_cost(eta) for eta in path_edges(graph, dj_path))
        assert bf_cost == pytest.approx(bf.costs[node], rel=1e-9, abs=1e-12)
        assert dj_cost == pytest.approx(bf.costs[node], rel=1e-9, abs=1e-12)
        assert dj_eta == pytest.approx(
            path_transmissivity(path_edges(graph, dj_path)), rel=1e-12
        )


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_source_is_trivially_reachable(graph):
    bf = bellman_ford(graph, "n0")
    dj_costs, dj_prev = dijkstra(graph, "n0")
    assert bf.costs["n0"] == 0.0
    assert dj_costs["n0"] == 0.0
    assert bf.predecessors["n0"] is None
    assert dj_prev["n0"] is None
