"""Property tests for the multipath strategy layer.

Three components are pinned against independent oracles:

* :func:`~repro.routing.yen.yen_paths` against brute-force simple-path
  enumeration on random graphs — every yielded path is simple, costs are
  non-decreasing, and the multiset of costs matches the brute-force
  ranking exactly (ties may reorder paths, never costs).
* :class:`~repro.routing.memory.MemoryPool` under random reservation /
  release / expiry streams — occupancy never goes negative or exceeds
  capacity, and decoherence expiry is monotone in time.
* :func:`~repro.routing.strategies.distill_step` against the
  density-matrix DEJMPS oracle on Werner-twirled amplitude-damped
  pairs — the closed form the serving hot path uses is the physics,
  not an approximation of it.

The Yen inner solver is Dijkstra; the shared-metric leg checks its
first-ranked path realises exactly the Bellman–Ford optimum the strict
router would have picked.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.network.protocols import (
    dejmps_purification,
    distribute_entanglement,
    generate_bell_pair,
    werner_twirl,
)
from repro.routing.bellman_ford import bellman_ford
from repro.routing.memory import MemoryPool
from repro.routing.metrics import edge_cost, path_edges
from repro.routing.strategies import distill_step, projection_fidelity
from repro.routing.yen import k_shortest_paths, yen_paths


@st.composite
def graphs(draw):
    """Random undirected graphs with eta-weighted edges on 2..6 nodes."""
    n = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    graph = {node: {} for node in nodes}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if draw(st.booleans()):
                eta = draw(st.floats(min_value=0.01, max_value=1.0))
                graph[a][b] = eta
                graph[b][a] = eta
    return graph


def brute_force_simple_paths(graph, source, destination):
    """Every simple source->destination path with its additive cost."""
    out = []
    nodes = [n for n in graph if n not in (source, destination)]
    for r in range(len(nodes) + 1):
        for mid in itertools.permutations(nodes, r):
            path = [source, *mid, destination]
            if all(b in graph[a] for a, b in zip(path, path[1:])):
                cost = sum(edge_cost(eta) for eta in path_edges(graph, path))
                out.append((cost, tuple(path)))
    out.sort()
    return out


@settings(max_examples=120, deadline=None)
@given(graph=graphs())
def test_yen_matches_brute_force_enumeration(graph):
    """Simple, loop-free, cost-ordered, and complete against brute force."""
    expected = brute_force_simple_paths(graph, "n0", "n1")
    got = list(yen_paths(graph, "n0", "n1"))
    assert len(got) == len(expected)
    prev_cost = -math.inf
    seen = set()
    for (path, cost), (exp_cost, _) in zip(got, expected):
        assert len(set(path)) == len(path), f"loop in {path}"
        assert path[0] == "n0" and path[-1] == "n1"
        assert all(b in graph[a] for a, b in zip(path, path[1:]))
        assert cost >= prev_cost
        assert cost == pytest.approx(exp_cost, rel=1e-9, abs=1e-12)
        prev_cost = cost
        seen.add(tuple(path))
    assert seen == {p for _, p in expected}


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), k=st.integers(min_value=1, max_value=6))
def test_k_shortest_is_a_prefix_of_the_full_ranking(graph, k):
    full = list(yen_paths(graph, "n0", "n1"))
    top = k_shortest_paths(graph, "n0", "n1", k)
    assert len(top) == min(k, len(full))
    for (path, cost), (f_path, f_cost) in zip(top, full):
        assert cost == f_cost
        assert path == f_path


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_yen_first_path_is_the_bellman_ford_optimum(graph):
    """Shared-metric equivalence: the Dijkstra spur solver and the strict
    router's Bellman-Ford minimise the same 1/(eta+eps) cost."""
    bf = bellman_ford(graph, "n0")
    first = next(iter(yen_paths(graph, "n0", "n1")), None)
    if not bf.reachable("n1"):
        assert first is None
        return
    assert first is not None
    path, cost = first
    assert cost == pytest.approx(bf.costs["n1"], rel=1e-9, abs=1e-12)


def test_yen_rejects_missing_endpoints_and_bad_k():
    graph = {"a": {"b": 0.9}, "b": {"a": 0.9}}
    with pytest.raises(RoutingError):
        list(yen_paths(graph, "a", "zz"))
    with pytest.raises(RoutingError):
        list(yen_paths(graph, "zz", "a"))
    with pytest.raises(RoutingError):
        k_shortest_paths(graph, "a", "b", 0)


# --- entanglement-memory accounting -------------------------------------


@st.composite
def reservation_streams(draw):
    """A time-ordered stream of reserve / release steps over 4 nodes."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops, t = [], 0.0
    for _ in range(n_ops):
        t += draw(st.floats(min_value=0.0, max_value=0.8))
        if draw(st.booleans()):
            nodes = draw(
                st.lists(
                    st.sampled_from(["r0", "r1", "r2", "r3"]),
                    min_size=1,
                    max_size=3,
                )
            )
            ops.append(("reserve", t, tuple(nodes)))
        else:
            ops.append(("release", t, draw(st.integers(min_value=0, max_value=30))))
    return ops


@settings(max_examples=150, deadline=None)
@given(
    ops=reservation_streams(),
    capacity=st.integers(min_value=0, max_value=6),
    window=st.one_of(st.none(), st.floats(min_value=0.1, max_value=2.0)),
)
def test_memory_pool_accounting_never_goes_negative(ops, capacity, window):
    pool = MemoryPool(capacity, window_s=window)
    live = []
    for op, t, arg in ops:
        if op == "reserve":
            res = pool.try_reserve(arg, t, slots_per_node=2)
            if res is not None:
                live.append(res)
                # Atomicity: every node of the accepted reservation is
                # charged 2 slots regardless of duplicates in the path.
                for node in set(arg):
                    assert pool.in_use(node, t) >= 2
        elif live:
            res = live.pop(arg % len(live))
            alive = pool.alive(res, t)
            released = pool.release(res)
            # An expired reservation may already have been swept; a live
            # one must release exactly once (idempotent afterwards).
            if alive:
                assert released is True
            assert pool.release(res) is False
        for node in ("r0", "r1", "r2", "r3"):
            used = pool.in_use(node, t)
            free = pool.available(node, t)
            assert 0 <= used <= capacity
            assert free == capacity - used


@settings(max_examples=100, deadline=None)
@given(
    t0=st.floats(min_value=0.0, max_value=10.0),
    window=st.floats(min_value=0.1, max_value=2.0),
    probes=st.lists(
        st.floats(min_value=0.0, max_value=15.0), min_size=1, max_size=8
    ),
)
def test_memory_expiry_is_monotone_in_time(t0, window, probes):
    """Once a reservation has decohered it never comes back alive."""
    pool = MemoryPool(4, window_s=window)
    res = pool.try_reserve(("r0",), t0, slots_per_node=2)
    assert res is not None
    was_dead = False
    for t in sorted(probes):
        alive = pool.alive(res, t)
        if was_dead:
            assert not alive
        if not alive:
            was_dead = True
        assert alive == (t < t0 + window)


def test_zero_capacity_pool_blocks_everything():
    pool = MemoryPool(0)
    assert pool.try_reserve(("r0",), 0.0) is None
    pool = MemoryPool(None)  # unbounded
    for i in range(50):
        assert pool.try_reserve(("r0",), float(i)) is not None


# --- purification physics ------------------------------------------------


def werner_state(f: float) -> np.ndarray:
    phi = generate_bell_pair()
    return f * phi + (1.0 - f) / 3.0 * (np.eye(4, dtype=complex) - phi)


@pytest.mark.parametrize("eta1", [0.3, 0.5, 0.75, 0.9])
@pytest.mark.parametrize("eta2", [0.3, 0.6, 0.95])
def test_distill_step_matches_the_dejmps_density_matrix_oracle(eta1, eta2):
    """The closed form equals DEJMPS on Werner-twirled damped pairs."""
    f1 = projection_fidelity(eta1)
    f2 = projection_fidelity(eta2)
    # The twirled delivered pair has exactly the closed-form fidelity.
    pair = distribute_entanglement([eta1])
    assert float(np.real(np.trace(generate_bell_pair() @ werner_twirl(pair.rho)))) == (
        pytest.approx(f1, abs=1e-12)
    )
    _, rho_out = dejmps_purification(werner_state(f1), werner_state(f2))
    oracle = float(np.real(np.trace(generate_bell_pair() @ rho_out)))
    assert distill_step(f1, f2) == pytest.approx(oracle, abs=1e-12)


@settings(max_examples=200, deadline=None)
@given(
    f1=st.floats(min_value=0.5, max_value=1.0),
    f2=st.floats(min_value=0.5, max_value=1.0),
)
def test_distill_step_improves_good_pairs(f1, f2):
    """Above the 0.5 Werner threshold distillation never hurts the
    better input when partnered with an equal-or-better pair."""
    out = distill_step(f1, f2)
    assert 0.0 <= out <= 1.0
    if f1 == f2 and f1 > 0.5:
        assert out >= f1 - 1e-12
