"""Tests for the transmissivity routing metric."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.routing.metrics import (
    DEFAULT_EPSILON,
    edge_cost,
    path_cost,
    path_edges,
    path_transmissivity,
)

etas = st.floats(min_value=0.0, max_value=1.0)


class TestEdgeCost:
    def test_formula(self):
        assert edge_cost(0.5, 1e-6) == pytest.approx(1.0 / 0.500001)

    def test_better_links_cost_less(self):
        assert edge_cost(0.9) < edge_cost(0.5) < edge_cost(0.1)

    def test_epsilon_guards_zero(self):
        assert edge_cost(0.0) == pytest.approx(1.0 / DEFAULT_EPSILON)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            edge_cost(1.5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValidationError):
            edge_cost(0.5, 0.0)


class TestPathCost:
    def test_sums_edges(self):
        assert path_cost([0.5, 0.5]) == pytest.approx(2 * edge_cost(0.5))

    def test_empty_path_zero(self):
        assert path_cost([]) == 0.0


class TestPathTransmissivity:
    def test_product(self):
        assert path_transmissivity([0.5, 0.4]) == pytest.approx(0.2)

    def test_empty_is_unity(self):
        assert path_transmissivity([]) == 1.0

    @given(st.lists(etas, min_size=1, max_size=6))
    def test_property_bounded_by_worst_link(self, link_etas):
        assert path_transmissivity(link_etas) <= min(link_etas) + 1e-12

    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            path_transmissivity([0.5, 1.5])


class TestPathEdges:
    def test_extracts_etas(self):
        graph = {"a": {"b": 0.9}, "b": {"a": 0.9, "c": 0.8}, "c": {"b": 0.8}}
        assert path_edges(graph, ["a", "b", "c"]) == [0.9, 0.8]

    def test_missing_edge_rejected(self):
        graph = {"a": {"b": 0.9}, "b": {"a": 0.9}}
        with pytest.raises(ValidationError):
            path_edges(graph, ["a", "b", "c"])
