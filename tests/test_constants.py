"""Sanity tests pinning the physical constants and unit helpers."""

import math

import pytest

from repro import constants as c


class TestEarthModel:
    def test_wgs84_relations(self):
        assert c.WGS84_B_KM == pytest.approx(c.WGS84_A_KM * (1 - c.EARTH_FLATTENING))
        assert c.WGS84_E2 == pytest.approx(
            c.EARTH_FLATTENING * (2 - c.EARTH_FLATTENING)
        )
        assert c.WGS84_B_KM < c.EARTH_RADIUS_KM < c.WGS84_A_KM

    def test_sidereal_day_shorter_than_solar(self):
        assert c.SIDEREAL_DAY_S < c.SOLAR_DAY_S

    def test_rotation_rate_matches_sidereal_day(self):
        assert c.EARTH_ROTATION_RATE_RAD_S * c.SIDEREAL_DAY_S == pytest.approx(
            2 * math.pi, rel=1e-6
        )

    def test_day_minutes(self):
        assert c.DAY_MINUTES * 60 == c.SOLAR_DAY_S


class TestQntnScenario:
    def test_semi_major_axis_consistent_with_altitude(self):
        """Paper: 500 km altitude <-> a = 6871 km."""
        assert c.QNTN_SEMI_MAJOR_AXIS_KM == pytest.approx(
            c.EARTH_RADIUS_KM + c.QNTN_SATELLITE_ALTITUDE_KM
        )

    def test_min_elevation_is_20_degrees(self):
        assert math.degrees(c.QNTN_MIN_ELEVATION_RAD) == pytest.approx(20.0)

    def test_inclination_53_degrees(self):
        assert math.degrees(c.QNTN_INCLINATION_RAD) == pytest.approx(53.0)

    def test_hap_inside_tennessee(self):
        assert 34.5 < c.QNTN_HAP_LAT_DEG < 37.0
        assert -90.0 < c.QNTN_HAP_LON_DEG < -81.0

    def test_threshold_and_cadence(self):
        assert c.QNTN_TRANSMISSIVITY_THRESHOLD == 0.7
        assert c.QNTN_EPHEMERIS_STEP_S == 30.0
        assert c.QNTN_FIBER_ATTENUATION_DB_KM == 0.15


class TestUnitHelpers:
    def test_deg_rad_roundtrip(self):
        assert c.rad2deg(c.deg2rad(53.0)) == pytest.approx(53.0)

    def test_db_linear_roundtrip(self):
        assert c.linear_to_db(c.db_to_linear(-3.0)) == pytest.approx(-3.0)

    def test_db_known_values(self):
        assert c.db_to_linear(10.0) == pytest.approx(10.0)
        assert c.db_to_linear(0.0) == 1.0

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            c.linear_to_db(0.0)

    def test_speed_of_light_consistency(self):
        assert c.SPEED_OF_LIGHT_M_S == pytest.approx(c.SPEED_OF_LIGHT_KM_S * 1000.0)
