"""Tests for the compiled FaultPlane: scalar vs vectorized query agreement."""

import numpy as np

from repro.faults import (
    FaultPlane,
    FaultSchedule,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
)

TIMES = np.arange(0.0, 600.0, 30.0)


def plane() -> FaultPlane:
    return FaultSchedule(
        events=(
            SatelliteOutage(60.0, 120.0, satellite="sat-000"),
            SatelliteOutage(300.0, 330.0, satellite="sat-000"),
            GroundStationDowntime(90.0, 150.0, station="ttu-0"),
            WeatherFade(0.0, 240.0, site="ttu-0", extra_db=3.0),
            WeatherFade(120.0, 480.0, site="ttu-0", extra_db=7.0),
            LinkFlap(30.0, 90.0, node_a="ornl-0", node_b="sat-002"),
        )
    ).compile()


class TestScalarQueries:
    def test_half_open_node_windows(self):
        p = plane()
        assert not p.node_down("sat-000", 59.999)
        assert p.node_down("sat-000", 60.0)
        assert p.node_down("sat-000", 119.999)
        assert not p.node_down("sat-000", 120.0)
        assert p.node_down("sat-000", 310.0)

    def test_unknown_node_never_down(self):
        assert not plane().node_down("sat-011", 100.0)

    def test_link_cut_symmetric(self):
        p = plane()
        assert p.link_cut("ornl-0", "sat-002", 60.0)
        assert p.link_cut("sat-002", "ornl-0", 60.0)
        assert not p.link_cut("ornl-0", "sat-002", 90.0)

    def test_stacked_fades_multiply(self):
        p = plane()
        f3 = 10.0 ** (-3.0 / 10.0)
        f7 = 10.0 ** (-7.0 / 10.0)
        assert p.fade_factor("ttu-0", 60.0) == f3
        assert p.fade_factor("ttu-0", 180.0) == f3 * f7
        assert p.fade_factor("ttu-0", 300.0) == f7
        assert p.fade_factor("ttu-0", 500.0) == 1.0

    def test_attenuation_factor_alias(self):
        p = plane()
        assert p.attenuation_factor("ttu-0", 180.0) == p.fade_factor("ttu-0", 180.0)

    def test_unfaded_site_is_exactly_one(self):
        assert plane().fade_factor("ornl-0", 180.0) == 1.0


class TestVectorizedQueries:
    def test_node_up_series_matches_scalar(self):
        p = plane()
        series = p.node_up_series("sat-000", TIMES)
        assert isinstance(series, np.ndarray)
        expected = np.array([not p.node_down("sat-000", float(t)) for t in TIMES])
        np.testing.assert_array_equal(series, expected)

    def test_link_ok_series_matches_scalar(self):
        p = plane()
        series = p.link_ok_series("sat-002", "ornl-0", TIMES)
        expected = np.array([not p.link_cut("ornl-0", "sat-002", float(t)) for t in TIMES])
        np.testing.assert_array_equal(series, expected)

    def test_fade_factor_series_matches_scalar_bitwise(self):
        p = plane()
        series = p.fade_factor_series("ttu-0", TIMES)
        expected = np.array([p.fade_factor("ttu-0", float(t)) for t in TIMES])
        # Bit-identical, not approx: scalar and vectorized paths multiply
        # the same precomputed factors in the same order.
        np.testing.assert_array_equal(series, expected)

    def test_untouched_targets_return_scalar_sentinels(self):
        p = plane()
        assert p.node_up_series("sat-011", TIMES) is True
        assert p.link_ok_series("a", "b", TIMES) is True
        assert p.fade_factor_series("ornl-0", TIMES) == 1.0

    def test_platform_up_matrix(self):
        p = plane()
        names = ["sat-000", "sat-001", "sat-002"]
        up = p.platform_up_matrix(names, TIMES)
        assert up.shape == (3, TIMES.size)
        np.testing.assert_array_equal(up[0], p.node_up_series("sat-000", TIMES))
        assert up[1].all() and up[2].all()

    def test_platform_up_matrix_scalar_when_untouched(self):
        assert plane().platform_up_matrix(["sat-005", "sat-006"], TIMES) is True

    def test_link_ok_matrix(self):
        p = plane()
        names = ["sat-001", "sat-002"]
        ok = p.link_ok_matrix("ornl-0", names, TIMES)
        assert ok.shape == (2, TIMES.size)
        assert ok[0].all()
        np.testing.assert_array_equal(ok[1], p.link_ok_series("ornl-0", "sat-002", TIMES))

    def test_link_ok_matrix_scalar_when_untouched(self):
        assert plane().link_ok_matrix("ttu-0", ["sat-001"], TIMES) is True


class TestNoopPlane:
    def test_empty_is_noop(self):
        assert FaultPlane().is_noop
        assert not plane().is_noop

    def test_noop_answers_identity(self):
        p = FaultPlane()
        assert not p.node_down("x", 0.0)
        assert not p.link_cut("x", "y", 0.0)
        assert p.fade_factor("x", 0.0) == 1.0
        assert p.node_up_series("x", TIMES) is True
        assert p.fade_factor_series("x", TIMES) == 1.0

    def test_zero_length_event_plane_is_inert(self):
        p = FaultPlane((SatelliteOutage(100.0, 100.0, satellite="sat-000"),))
        assert not p.is_noop  # it has an event...
        series = p.node_up_series("sat-000", TIMES)
        assert np.asarray(series).all()  # ...but the event covers no sample


class TestFaultedSiteBudget:
    def test_monotone_and_healthy_mask(self, healthy_table, small_ephemeris, policy):
        site = healthy_table.site_names[0]
        healthy = healthy_table.budget(site)
        p = FaultSchedule(
            events=(
                WeatherFade(0.0, 7200.0, site=site, extra_db=6.0),
                SatelliteOutage(0.0, 3600.0, satellite="sat-004"),
            )
        ).compile()
        faulted = p.faulted_site_budget(healthy, small_ephemeris, policy)
        assert np.all(faulted.transmissivity <= healthy.transmissivity)
        assert not np.any(faulted.usable & ~healthy.usable)
        np.testing.assert_array_equal(faulted.usable_healthy, healthy.usable)
        np.testing.assert_array_equal(faulted.healthy_usable, healthy.usable)
        assert healthy.usable_healthy is None
        assert healthy.healthy_usable is healthy.usable

    def test_noop_returns_same_object(self, healthy_table, small_ephemeris, policy):
        healthy = healthy_table.budget(healthy_table.site_names[0])
        assert FaultPlane().faulted_site_budget(healthy, small_ephemeris, policy) is healthy

    def test_outage_kills_platform_row(self, healthy_table, small_ephemeris, policy):
        site = healthy_table.site_names[0]
        healthy = healthy_table.budget(site)
        row = list(small_ephemeris.names).index("sat-004")
        p = FaultSchedule(
            events=(SatelliteOutage(0.0, 1e9, satellite="sat-004"),)
        ).compile()
        faulted = p.faulted_site_budget(healthy, small_ephemeris, policy)
        assert not faulted.usable[row].any()
        other = [i for i in range(len(small_ephemeris.names)) if i != row]
        np.testing.assert_array_equal(faulted.usable[other], healthy.usable[other])
