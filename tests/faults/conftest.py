"""Shared fixtures and helpers for the fault-injection suite."""

from __future__ import annotations

import math

import pytest

from repro.channels.presets import paper_satellite_fso
from repro.engine.budgets import LinkBudgetTable
from repro.network.links import LinkPolicy
from repro.network.simulator import NetworkSimulator, RequestOutcome
from repro.network.topology import attach_satellites, build_qntn_ground_network


@pytest.fixture(scope="session")
def fso_model():
    """Calibrated paper satellite FSO channel model."""
    return paper_satellite_fso()


@pytest.fixture(scope="session")
def policy():
    """Default link admission policy (matches the simulators' default)."""
    return LinkPolicy()


@pytest.fixture(scope="session")
def healthy_table(small_ephemeris, sites, fso_model, policy) -> LinkBudgetTable:
    """Unfaulted budget table over the small fixture, shared read-only."""
    return LinkBudgetTable(small_ephemeris, sites, fso_model, policy=policy)


def make_sat_simulator(ephemeris, *, faults=None, use_cache=False) -> NetworkSimulator:
    """Fresh space-ground simulator over ``ephemeris`` with optional faults."""
    network = build_qntn_ground_network()
    attach_satellites(network, ephemeris, paper_satellite_fso())
    return NetworkSimulator(network, faults=faults, use_cache=use_cache)


def outcomes_equal(a: RequestOutcome, b: RequestOutcome) -> bool:
    """Field-wise outcome equality treating NaN fidelity as equal.

    Dataclass ``==`` is useless for denied outcomes: their fidelity is
    NaN and ``nan != nan``.
    """
    if (a.source, a.destination, a.time_s, a.served, a.path) != (
        b.source,
        b.destination,
        b.time_s,
        b.served,
        b.path,
    ):
        return False
    if a.path_transmissivity != b.path_transmissivity:
        return False
    if math.isnan(a.fidelity) and math.isnan(b.fidelity):
        return True
    return a.fidelity == b.fidelity
