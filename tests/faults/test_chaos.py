"""Chaos harness: property-based invariants over random fault schedules.

Hypothesis drives >= 200 random schedules (210 across the three
property tests) against the small fixture and asserts the §11
invariants: faults never raise a per-link budget eta or admit a link
the healthy run rejected; service under faults is a subset of healthy
service; a superset schedule never serves more than its subset; and
every denial carries exactly one canonical cause so served + Σcauses
covers the probe set. Shard determinism (serial == sharded, with and
without a worker pool) is pinned on fixed schedules.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.faults import (
    FaultSchedule,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
)
from repro.obs.trace import DenialCause
from repro.parallel.sweep import parallel_service_sweep

from tests.faults.conftest import outcomes_equal

HORIZON_S = 7200.0
SAT_NAMES = [f"sat-{i:03d}" for i in range(12)]
SITE_NAMES = [node.name for node in all_ground_nodes()]
#: Cross-LAN probes the small fixture is known to serve (via sat-004)
#: plus one pair it mostly denies — both behaviors stay covered.
PROBES = [("ttu-0", "ornl-10"), ("ttu-3", "ornl-0"), ("epb-0", "ttu-1")]
PROBE_TIMES = [0, 12, 14, 60, 119]

CHAOS_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def windows(horizon: float = HORIZON_S):
    return st.tuples(
        st.floats(min_value=0.0, max_value=horizon),
        st.floats(min_value=0.0, max_value=horizon / 2),
    ).map(lambda p: (p[0], p[0] + p[1]))


def events():
    sat = st.sampled_from(SAT_NAMES)
    site = st.sampled_from(SITE_NAMES)
    return st.one_of(
        st.builds(
            lambda w, s: SatelliteOutage(w[0], w[1], satellite=s), windows(), sat
        ),
        st.builds(
            lambda w, s: GroundStationDowntime(w[0], w[1], station=s), windows(), site
        ),
        st.builds(
            lambda w, s, db: WeatherFade(w[0], w[1], site=s, extra_db=db),
            windows(),
            site,
            st.floats(min_value=0.0, max_value=20.0),
        ),
        st.builds(
            lambda w, a, b: LinkFlap(w[0], w[1], node_a=a, node_b=b), windows(), site, sat
        ),
    )


def schedules(max_events: int = 8):
    return st.lists(events(), max_size=max_events).map(
        lambda evs: FaultSchedule(events=tuple(evs))
    )


def served_probes(analysis: SpaceGroundAnalysis) -> set[tuple[str, str, int]]:
    hits = set()
    for t in PROBE_TIMES:
        for src, dst in PROBES:
            if analysis.request_detail(src, dst, t)["served"]:
                hits.add((src, dst, t))
    return hits


@settings(max_examples=100, **CHAOS_SETTINGS)
@given(schedule=schedules())
def test_budget_eta_and_usable_monotone(
    schedule, healthy_table, small_ephemeris, policy
):
    """Faults never raise a link eta or admit a link physics rejected."""
    plane = schedule.compile()
    for name in ("ttu-0", "ornl-10", "epb-0"):
        healthy = healthy_table.budget(name)
        faulted = plane.faulted_site_budget(healthy, small_ephemeris, policy)
        assert np.all(faulted.transmissivity <= healthy.transmissivity)
        assert not np.any(faulted.usable & ~healthy.usable)
        if plane.is_noop:
            assert faulted is healthy
        else:
            np.testing.assert_array_equal(faulted.healthy_usable, healthy.usable)


@settings(max_examples=60, **CHAOS_SETTINGS)
@given(schedule=schedules())
def test_service_monotone_and_denials_account(
    schedule, sat_analysis_small, small_ephemeris, sites, fso_model, policy
):
    """Faulted service ⊆ healthy service; served + Σcauses == probes."""
    plane = schedule.compile()
    faulted = SpaceGroundAnalysis(
        small_ephemeris,
        sites,
        fso_model,
        policy=policy,
        faults=None if plane.is_noop else plane,
    )
    healthy_hits = served_probes(sat_analysis_small)
    n_served = 0
    cause_totals = {c: 0 for c in DenialCause}
    for t in PROBE_TIMES:
        for src, dst in PROBES:
            detail = faulted.request_detail(src, dst, t)
            if detail["served"]:
                n_served += 1
                assert detail["cause"] is None
                assert (src, dst, t) in healthy_hits
            else:
                assert isinstance(detail["cause"], DenialCause)
                cause_totals[detail["cause"]] += 1
            counts = detail["candidate_counts"]
            healthy_usable = counts.get("healthy_usable", counts["usable"])
            assert counts["usable"] <= healthy_usable <= counts["elevation_ok"]
            for cand in detail["candidates"]:
                if cand.get("faulted"):
                    assert not cand["usable"]
    assert n_served + sum(cause_totals.values()) == len(PROBES) * len(PROBE_TIMES)
    if plane.is_noop:
        assert cause_totals[DenialCause.FAULT_OUTAGE] == 0
        assert n_served == len(healthy_hits)


@settings(max_examples=50, **CHAOS_SETTINGS)
@given(first=schedules(max_events=4), extra=schedules(max_events=4))
def test_superset_schedule_never_serves_more(
    first, extra, small_ephemeris, sites, fso_model, policy
):
    """Adding events to a schedule can only remove served probes."""

    def analyse(schedule):
        plane = schedule.compile()
        return served_probes(
            SpaceGroundAnalysis(
                small_ephemeris,
                sites,
                fso_model,
                policy=policy,
                faults=None if plane.is_noop else plane,
            )
        )

    assert analyse(first.union(extra)) <= analyse(first)


FIXED_SCHEDULES = [
    FaultSchedule(),
    FaultSchedule(events=(SatelliteOutage(0.0, HORIZON_S, satellite="sat-004"),)),
    FaultSchedule(
        events=(
            WeatherFade(0.0, HORIZON_S, site="ttu-0", extra_db=2.5),
            GroundStationDowntime(600.0, 1800.0, station="ornl-0"),
            LinkFlap(0.0, 900.0, node_a="ttu-3", node_b="sat-001"),
        )
    ),
]


@pytest.mark.parametrize("schedule", FIXED_SCHEDULES, ids=["empty", "outage", "mixed"])
def test_serial_equals_sharded(schedule, small_ephemeris):
    """Shard-count and worker-count never change faulted outcomes."""
    kwargs = dict(time_indices=[0, 12, 13, 14, 60], faults=schedule)
    serial = parallel_service_sweep(
        small_ephemeris, PROBES, n_workers=0, n_shards=1, **kwargs
    )
    sharded = parallel_service_sweep(
        small_ephemeris, PROBES, n_workers=0, n_shards=3, **kwargs
    )
    assert len(serial) == len(sharded)
    for row_a, row_b in zip(serial, sharded):
        for a, b in zip(row_a, row_b):
            assert outcomes_equal(a, b)


def test_serial_equals_pooled(small_ephemeris):
    """A real worker pool reproduces the serial faulted outcomes."""
    schedule = FIXED_SCHEDULES[2]
    kwargs = dict(time_indices=[0, 12, 13, 14, 60], faults=schedule)
    serial = parallel_service_sweep(
        small_ephemeris, PROBES, n_workers=0, n_shards=2, **kwargs
    )
    pooled = parallel_service_sweep(
        small_ephemeris, PROBES, n_workers=2, n_shards=2, **kwargs
    )
    for row_a, row_b in zip(serial, pooled):
        for a, b in zip(row_a, row_b):
            assert outcomes_equal(a, b)


@settings(max_examples=25, **CHAOS_SETTINGS)
@given(schedule=schedules(max_events=5))
def test_multipath_serial_equals_sharded_under_chaos(schedule, small_ephemeris):
    """Serial == sharded cause totals under --router k-shortest and
    random fault schedules: the rescue layer keeps outcomes pure
    functions of (source, destination, t), so shard boundaries cannot
    move a request between served / route_exhausted / memory_full."""
    from collections import Counter

    from repro.network.workload import (
        align_to_grid,
        lans_from_sites,
        poisson_request_stream,
    )
    from repro.routing.strategies import StrategyConfig
    from repro.serve import serve_stream_sharded
    from repro.serve.engine import outcomes_equal as serve_outcomes_equal

    stream = align_to_grid(
        poisson_request_stream(
            lans_from_sites(all_ground_nodes()),
            rate_hz=0.005,
            duration_s=HORIZON_S,
            seed=11,
        ),
        small_ephemeris.times_s,
    )
    realized = schedule.realize(seed=3, horizon_s=HORIZON_S)
    strategy = StrategyConfig(router="k-shortest", k=2)
    replays = [
        serve_stream_sharded(
            small_ephemeris,
            stream,
            engine="cached",
            faults=realized,
            strategy=strategy,
            n_workers=0,
            n_shards=n_shards,
        )
        for n_shards in (1, 3)
    ]
    serial, sharded = replays
    assert len(serial) == len(sharded) == len(stream)
    for a, b in zip(serial, sharded):
        assert serve_outcomes_equal(a, b), (a, b)
    causes = [
        Counter(o.cause for o in replay if not o.served) for replay in replays
    ]
    assert causes[0] == causes[1]
