"""Tests for repro.faults schedule data model: events, processes, realization."""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults import (
    FailureProcess,
    FaultSchedule,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
    load_faults,
)
from repro.faults.schedule import coerce_schedule


def mixed_schedule() -> FaultSchedule:
    return FaultSchedule(
        events=(
            SatelliteOutage(100.0, 200.0, satellite="sat-004"),
            GroundStationDowntime(0.0, 50.0, station="ttu-0"),
            WeatherFade(10.0, 400.0, site="ornl-0", extra_db=3.0),
            LinkFlap(30.0, 60.0, node_a="ttu-0", node_b="sat-001"),
        )
    )


class TestEvents:
    def test_kind_tags(self):
        assert SatelliteOutage(0, 1, satellite="s").kind == "satellite_outage"
        assert GroundStationDowntime(0, 1, station="g").kind == "ground_station_downtime"
        assert WeatherFade(0, 1, site="g", extra_db=1.0).kind == "weather_fade"
        assert LinkFlap(0, 1, node_a="a", node_b="b").kind == "link_flap"

    def test_active_is_half_open(self):
        ev = SatelliteOutage(10.0, 20.0, satellite="s")
        assert not ev.active(9.999)
        assert ev.active(10.0)
        assert ev.active(19.999)
        assert not ev.active(20.0)

    def test_zero_length_window_never_active(self):
        ev = SatelliteOutage(10.0, 10.0, satellite="s")
        assert not ev.active(10.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            SatelliteOutage(20.0, 10.0, satellite="s")

    def test_nonfinite_window_rejected(self):
        with pytest.raises(ValidationError):
            WeatherFade(float("nan"), 10.0, site="g", extra_db=1.0)

    def test_empty_target_rejected(self):
        with pytest.raises(ValidationError):
            SatelliteOutage(0.0, 1.0)
        with pytest.raises(ValidationError):
            GroundStationDowntime(0.0, 1.0)
        with pytest.raises(ValidationError):
            WeatherFade(0.0, 1.0)

    def test_negative_fade_rejected(self):
        with pytest.raises(ValidationError):
            WeatherFade(0.0, 1.0, site="g", extra_db=-1.0)

    def test_nan_fade_rejected(self):
        with pytest.raises(ValidationError):
            WeatherFade(0.0, 1.0, site="g", extra_db=float("nan"))

    def test_link_flap_same_endpoint_rejected(self):
        with pytest.raises(ValidationError):
            LinkFlap(0.0, 1.0, node_a="x", node_b="x")


class TestRoundTrip:
    def test_to_from_dict(self):
        schedule = mixed_schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_processes_round_trip(self):
        schedule = FaultSchedule(
            processes=(
                FailureProcess(
                    kind="satellite_outage",
                    targets=("sat-000", "sat-001"),
                    mean_time_between_s=3600.0,
                    mean_duration_s=600.0,
                ),
            )
        )
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault event kind"):
            FaultSchedule.from_dict({"events": [{"kind": "meteor_strike"}]})

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown satellite_outage fields"):
            FaultSchedule.from_dict(
                {
                    "events": [
                        {
                            "kind": "satellite_outage",
                            "start_s": 0,
                            "end_s": 1,
                            "satellite": "s",
                            "severity": 11,
                        }
                    ]
                }
            )

    def test_unknown_schedule_key_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault schedule keys"):
            FaultSchedule.from_dict({"events": [], "chaos": True})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValidationError, match="must be a mapping"):
            FaultSchedule.from_dict([1, 2, 3])


class TestHash:
    def test_stable_across_instances(self):
        assert mixed_schedule().schedule_hash() == mixed_schedule().schedule_hash()

    def test_sensitive_to_any_field(self):
        base = mixed_schedule().schedule_hash()
        nudged = FaultSchedule(
            events=mixed_schedule().events[:-1]
            + (LinkFlap(30.0, 60.5, node_a="ttu-0", node_b="sat-001"),)
        )
        assert nudged.schedule_hash() != base

    def test_survives_json_round_trip(self):
        schedule = mixed_schedule()
        again = FaultSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert again.schedule_hash() == schedule.schedule_hash()


class TestRealize:
    def process_schedule(self) -> FaultSchedule:
        return FaultSchedule(
            processes=(
                FailureProcess(
                    kind="satellite_outage",
                    targets=("sat-000", "sat-003"),
                    mean_time_between_s=1800.0,
                    mean_duration_s=900.0,
                ),
                FailureProcess(
                    kind="weather_fade",
                    targets=("ttu-0",),
                    mean_time_between_s=1200.0,
                    mean_duration_s=600.0,
                    mean_extra_db=4.0,
                ),
            )
        )

    def test_same_seed_same_events(self):
        a = self.process_schedule().realize(seed=42, horizon_s=86400.0)
        b = self.process_schedule().realize(seed=42, horizon_s=86400.0)
        assert a == b
        assert a.is_realized and len(a) > 0

    def test_different_seed_different_events(self):
        a = self.process_schedule().realize(seed=42, horizon_s=86400.0)
        b = self.process_schedule().realize(seed=43, horizon_s=86400.0)
        assert a != b

    def test_event_only_schedule_realizes_to_itself(self):
        schedule = mixed_schedule()
        assert schedule.realize(seed=0, horizon_s=86400.0) is schedule

    def test_realize_is_idempotent(self):
        once = self.process_schedule().realize(seed=7, horizon_s=86400.0)
        assert once.realize(seed=99, horizon_s=86400.0) is once

    def test_events_clipped_to_horizon(self):
        realized = self.process_schedule().realize(seed=11, horizon_s=7200.0)
        assert all(ev.end_s <= 7200.0 for ev in realized.events)

    def test_appending_a_process_preserves_earlier_realizations(self):
        base = self.process_schedule()
        extended = FaultSchedule(
            processes=base.processes
            + (
                FailureProcess(
                    kind="link_flap",
                    targets=("ttu-0|sat-001",),
                    mean_time_between_s=600.0,
                    mean_duration_s=60.0,
                ),
            )
        )
        events_base = base.realize(seed=5, horizon_s=86400.0).events
        events_ext = extended.realize(seed=5, horizon_s=86400.0).events
        assert set(events_base) <= set(events_ext)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValidationError):
            self.process_schedule().realize(seed=1, horizon_s=0.0)

    def test_generator_seed_accepted(self):
        rng = np.random.default_rng(3)
        realized = self.process_schedule().realize(seed=rng, horizon_s=86400.0)
        assert realized.is_realized

    def test_compile_rejects_unrealized(self):
        with pytest.raises(ValidationError, match="unrealized stochastic"):
            self.process_schedule().compile()

    def test_bad_link_flap_target_rejected(self):
        bad = FaultSchedule(
            processes=(
                FailureProcess(
                    kind="link_flap",
                    targets=("not-a-pair",),
                    mean_time_between_s=60.0,
                    mean_duration_s=60.0,
                ),
            )
        )
        with pytest.raises(ValidationError, match="node_a|node_b"):
            bad.realize(seed=1, horizon_s=86400.0)


class TestProcessValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown process kind"):
            FailureProcess(
                kind="comet", targets=("x",), mean_time_between_s=1.0, mean_duration_s=1.0
            )

    def test_empty_targets(self):
        with pytest.raises(ValidationError, match="at least one target"):
            FailureProcess(
                kind="satellite_outage",
                targets=(),
                mean_time_between_s=1.0,
                mean_duration_s=1.0,
            )

    def test_nonpositive_means(self):
        with pytest.raises(ValidationError, match="must be positive"):
            FailureProcess(
                kind="satellite_outage",
                targets=("s",),
                mean_time_between_s=0.0,
                mean_duration_s=1.0,
            )


class TestUnionAndLen:
    def test_union_concatenates(self):
        a = mixed_schedule()
        b = FaultSchedule(events=(SatelliteOutage(0.0, 5.0, satellite="sat-009"),))
        u = a.union(b)
        assert len(u) == len(a) + len(b)
        assert set(u.events) == set(a.events) | set(b.events)

    def test_empty_flags(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule().is_realized
        assert not mixed_schedule().is_empty


class TestLoadAndCoerce:
    def test_load_faults_json(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(mixed_schedule().to_dict()), encoding="utf-8")
        assert load_faults(path) == mixed_schedule()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_faults(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_faults(path)

    def test_coerce_variants(self, tmp_path):
        schedule = mixed_schedule()
        assert coerce_schedule(None) is None
        assert coerce_schedule(schedule) is schedule
        assert coerce_schedule(schedule.to_dict()) == schedule
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(schedule.to_dict()), encoding="utf-8")
        assert coerce_schedule(str(path)) == schedule

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValidationError, match="cannot interpret"):
            coerce_schedule(3.14)
