"""The empty FaultSchedule is provably a bit-identical no-op everywhere."""

import numpy as np
import pytest

from repro.core.analysis import SpaceGroundAnalysis
from repro.core.sweeps import run_constellation_sweep
from repro.engine.budgets import LinkBudgetTable
from repro.faults import FaultSchedule

from tests.faults.conftest import make_sat_simulator, outcomes_equal

NOOP_PLANE = FaultSchedule().compile()


def test_consumers_drop_the_noop_plane(small_ephemeris, sites, fso_model, policy):
    table = LinkBudgetTable(small_ephemeris, sites, fso_model, policy=policy, faults=NOOP_PLANE)
    assert table.faults is None
    sim = make_sat_simulator(small_ephemeris, faults=NOOP_PLANE)
    assert sim.faults is None


def test_budget_table_bit_identical(small_ephemeris, sites, fso_model, policy, healthy_table):
    faulted = LinkBudgetTable(
        small_ephemeris, sites, fso_model, policy=policy, faults=NOOP_PLANE
    )
    for name in healthy_table.site_names[:4]:
        a = healthy_table.budget(name)
        b = faulted.budget(name)
        np.testing.assert_array_equal(a.transmissivity, b.transmissivity)
        np.testing.assert_array_equal(a.usable, b.usable)
        assert b.usable_healthy is None


def test_linkstate_cache_bit_identical(small_ephemeris):
    plain = make_sat_simulator(small_ephemeris, use_cache=True)
    noop = make_sat_simulator(small_ephemeris, faults=NOOP_PLANE, use_cache=True)
    ga = plain.linkstate
    gb = noop.linkstate
    for (a_a, a_b, a_eta, a_usable), (b_a, b_b, b_eta, b_usable) in zip(
        ga._edges, gb._edges
    ):
        assert (a_a, a_b) == (b_a, b_b)
        np.testing.assert_array_equal(np.asarray(a_eta), np.asarray(b_eta))
        np.testing.assert_array_equal(np.asarray(a_usable), np.asarray(b_usable))


@pytest.mark.parametrize("use_cache", [False, True])
def test_serving_bit_identical(small_ephemeris, sites, use_cache):
    pairs = [(sites[0].name, sites[-1].name), (sites[3].name, sites[20].name)]
    plain = make_sat_simulator(small_ephemeris, use_cache=use_cache)
    noop = make_sat_simulator(small_ephemeris, faults=NOOP_PLANE, use_cache=use_cache)
    for t in small_ephemeris.times_s[::10]:
        for a, b in zip(plain.serve_requests(pairs, float(t)), noop.serve_requests(pairs, float(t))):
            assert outcomes_equal(a, b)


def test_analysis_detail_has_no_fault_keys(small_ephemeris, sites, fso_model, policy):
    analysis = SpaceGroundAnalysis(
        small_ephemeris, sites, fso_model, policy=policy, faults=NOOP_PLANE
    )
    detail = analysis.request_detail(sites[0].name, sites[-1].name, 12)
    assert "healthy_usable" not in detail["candidate_counts"]
    assert all("faulted" not in c for c in detail["candidates"])


def test_sweep_with_empty_schedule_equals_no_faults(small_ephemeris, sites):
    kwargs = dict(
        sites=sites,
        ephemeris=small_ephemeris,
        duration_s=7200.0,
        step_s=60.0,
        n_requests=8,
        n_time_steps=6,
        seed=7,
    )
    plain = run_constellation_sweep([12], **kwargs)
    noop = run_constellation_sweep([12], faults=FaultSchedule().to_dict(), **kwargs)
    pa, pb = plain.points[0], noop.points[0]
    assert pa.coverage == pb.coverage
    sa, sb = pa.service, pb.service
    assert (sa.n_requests, sa.n_time_steps, sa.queue_drops) == (
        sb.n_requests,
        sb.n_time_steps,
        sb.queue_drops,
    )
    assert sa.served_per_step == sb.served_per_step
    assert sa.fidelities == sb.fidelities
    # mean_fidelity is NaN when nothing is served; NaN != NaN.
    assert sa.mean_fidelity == sb.mean_fidelity or (
        np.isnan(sa.mean_fidelity) and np.isnan(sb.mean_fidelity)
    )
