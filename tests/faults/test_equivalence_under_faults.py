"""Cached-vs-direct equivalence survives a mixed fault schedule.

DESIGN.md §7 pins the link-state cache to the direct evaluator; §11
requires the pin to hold under faults because both paths apply the same
:class:`~repro.faults.plane.FaultPlane` rule. The schedule here is built
around the small fixture's known traffic: ``sat-004`` relays every
cross-LAN served request of the 12-satellite/2-hour scenario, so an
all-horizon outage on it is guaranteed to degrade service.
"""

import math

import pytest

from repro.faults import (
    FaultSchedule,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
)

from tests.faults.conftest import make_sat_simulator

PAIRS = [("ttu-0", "ornl-10"), ("ttu-3", "ornl-0")]

MIXED = FaultSchedule(
    events=(
        SatelliteOutage(0.0, 7200.0, satellite="sat-004"),
        WeatherFade(0.0, 7200.0, site="ttu-0", extra_db=2.0),
        GroundStationDowntime(3000.0, 3600.0, station="ornl-0"),
        LinkFlap(0.0, 1800.0, node_a="ttu-3", node_b="sat-001"),
    )
)


def serve_all(sim, ephemeris):
    out = []
    for t in ephemeris.times_s:
        out.extend(sim.serve_requests(PAIRS, float(t)))
    return out


def test_cached_equals_direct_under_faults(small_ephemeris):
    plane = MIXED.compile()
    direct = serve_all(make_sat_simulator(small_ephemeris, faults=plane, use_cache=False), small_ephemeris)
    cached = serve_all(make_sat_simulator(small_ephemeris, faults=plane, use_cache=True), small_ephemeris)
    assert len(direct) == len(cached)
    for a, b in zip(direct, cached):
        assert (a.source, a.destination, a.time_s) == (b.source, b.destination, b.time_s)
        assert a.served == b.served
        assert a.path == b.path
        assert a.path_transmissivity == pytest.approx(b.path_transmissivity, rel=1e-12, abs=0.0)
        if math.isnan(a.fidelity):
            assert math.isnan(b.fidelity)
        else:
            assert a.fidelity == pytest.approx(b.fidelity, rel=1e-12, abs=0.0)


def test_schedule_degrades_service_monotonically(small_ephemeris):
    healthy = serve_all(make_sat_simulator(small_ephemeris), small_ephemeris)
    faulted = serve_all(make_sat_simulator(small_ephemeris, faults=MIXED.compile()), small_ephemeris)
    n_healthy = sum(o.served for o in healthy)
    n_faulted = sum(o.served for o in faulted)
    degraded = changed = 0
    for h, f in zip(healthy, faulted):
        # Faults only remove usable edges: a request served under faults
        # must have been served healthy too.
        assert h.served or not f.served
        if h.served and not f.served:
            degraded += 1
        elif h.served and f.path != h.path:
            changed += 1
    # The fixture is known to serve via sat-004, which the schedule kills.
    assert n_healthy > 0
    assert degraded + changed > 0
    assert n_faulted <= n_healthy


def test_killed_relay_never_appears_in_faulted_paths(small_ephemeris):
    faulted = serve_all(make_sat_simulator(small_ephemeris, faults=MIXED.compile()), small_ephemeris)
    for o in faulted:
        assert "sat-004" not in o.path
        if o.time_s < 1800.0 and o.served:
            assert ("ttu-3", "sat-001") not in zip(o.path, o.path[1:])
            assert ("sat-001", "ttu-3") not in zip(o.path, o.path[1:])
