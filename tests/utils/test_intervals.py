"""Unit and property tests for the interval algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.utils.intervals import (
    Interval,
    IntervalSet,
    intervals_from_mask,
    merge_intervals,
    total_duration,
)


class TestInterval:
    def test_duration(self):
        assert Interval(2.0, 5.0).duration == 3.0

    def test_zero_length_allowed(self):
        assert Interval(1.0, 1.0).duration == 0.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            Interval(2.0, 1.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            Interval(0.0, float("inf"))

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert not iv.contains(2.0)

    def test_overlaps_touching(self):
        assert Interval(0, 1).overlaps(Interval(1, 2))

    def test_intersect_disjoint_is_none(self):
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_intersect_overlap(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)


class TestMergeIntervals:
    def test_merges_overlapping(self):
        merged = merge_intervals([Interval(0, 2), Interval(1, 3)])
        assert merged == [Interval(0, 3)]

    def test_merges_touching(self):
        merged = merge_intervals([Interval(0, 1), Interval(1, 2)])
        assert merged == [Interval(0, 2)]

    def test_keeps_disjoint(self):
        merged = merge_intervals([Interval(3, 4), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(3, 4)]

    def test_empty(self):
        assert merge_intervals([]) == []

    def test_total_duration_of_union(self):
        assert total_duration([Interval(0, 2), Interval(1, 3), Interval(5, 6)]) == 4.0


class TestIntervalsFromMask:
    def test_single_run(self):
        times = np.array([0.0, 10.0, 20.0, 30.0])
        mask = np.array([False, True, True, False])
        assert intervals_from_mask(times, mask) == [Interval(10.0, 30.0)]

    def test_trailing_run_extends_by_step(self):
        times = np.array([0.0, 10.0, 20.0])
        mask = np.array([False, False, True])
        assert intervals_from_mask(times, mask) == [Interval(20.0, 30.0)]

    def test_all_true_covers_whole_span_plus_step(self):
        times = np.array([0.0, 10.0, 20.0])
        mask = np.ones(3, dtype=bool)
        assert intervals_from_mask(times, mask) == [Interval(0.0, 30.0)]

    def test_all_false_empty(self):
        times = np.array([0.0, 10.0])
        assert intervals_from_mask(times, np.zeros(2, dtype=bool)) == []

    def test_multiple_runs(self):
        times = np.arange(6, dtype=float)
        mask = np.array([True, False, True, True, False, True])
        ivs = intervals_from_mask(times, mask)
        assert ivs == [Interval(0, 1), Interval(2, 4), Interval(5, 6)]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValidationError):
            intervals_from_mask([0.0, 1.0], [True])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValidationError):
            intervals_from_mask([0.0, 0.0], [True, True])

    def test_empty_inputs(self):
        assert intervals_from_mask([], []) == []

    def test_single_sample_has_zero_width(self):
        """With one sample there is no step to infer: the window is empty."""
        assert intervals_from_mask([5.0], [True]) == [Interval(5.0, 5.0)]

    @given(
        st.lists(st.booleans(), min_size=2, max_size=60),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_property_total_duration_equals_true_count_times_step(self, mask, step):
        """With a uniform grid (>= 2 samples), duration is #True * step."""
        times = np.arange(len(mask)) * step
        ivs = intervals_from_mask(times, np.array(mask))
        expected = sum(mask) * step
        assert total_duration(ivs) == pytest.approx(expected, rel=1e-9)


class TestIntervalSet:
    def test_add_merges(self):
        s = IntervalSet([Interval(0, 1)])
        s.add(Interval(0.5, 2))
        assert list(s) == [Interval(0, 2)]
        assert s.duration == 2.0

    def test_contains(self):
        s = IntervalSet([Interval(0, 1), Interval(2, 3)])
        assert s.contains(2.5)
        assert not s.contains(1.5)

    def test_intersection(self):
        a = IntervalSet([Interval(0, 2), Interval(4, 6)])
        b = IntervalSet([Interval(1, 5)])
        inter = a.intersection(b)
        assert list(inter) == [Interval(1, 2), Interval(4, 5)]

    def test_coverage_fraction(self):
        s = IntervalSet([Interval(0, 25), Interval(50, 75)])
        assert s.coverage_fraction(100.0) == pytest.approx(0.5)

    def test_coverage_fraction_clips_to_horizon(self):
        s = IntervalSet([Interval(50, 150)])
        assert s.coverage_fraction(100.0) == pytest.approx(0.5)

    def test_coverage_fraction_bad_horizon(self):
        with pytest.raises(ValidationError):
            IntervalSet().coverage_fraction(0.0)

    def test_len(self):
        assert len(IntervalSet([Interval(0, 1), Interval(5, 6)])) == 2


class TestEdgeCases:
    """Empty, touching, zero-length and unsorted inputs (ISSUE 5)."""

    def test_merge_unsorted_input(self):
        merged = merge_intervals([Interval(5, 6), Interval(0, 1), Interval(0.5, 2)])
        assert merged == [Interval(0, 2), Interval(5, 6)]

    def test_merge_zero_length_absorbed_by_touching(self):
        assert merge_intervals([Interval(1, 1), Interval(1, 2)]) == [Interval(1, 2)]

    def test_merge_lone_zero_length_survives(self):
        merged = merge_intervals([Interval(3, 3)])
        assert merged == [Interval(3, 3)]
        assert total_duration(merged) == 0.0

    def test_total_duration_empty(self):
        assert total_duration([]) == 0

    def test_zero_length_contains_nothing(self):
        iv = Interval(3, 3)
        assert not iv.contains(3.0)
        assert iv.duration == 0.0

    def test_empty_set_identities(self):
        empty = IntervalSet()
        assert empty.duration == 0
        assert not empty.contains(0.0)
        assert list(empty.intersection(IntervalSet([Interval(0, 1)]))) == []
        assert list(IntervalSet([Interval(0, 1)]).intersection(empty)) == []

    def test_set_sorts_unsorted_construction(self):
        s = IntervalSet([Interval(2, 3), Interval(0, 1)])
        assert list(s) == [Interval(0, 1), Interval(2, 3)]
