"""Unit tests for the stopwatch (now living in repro.obs.spans)."""

import pytest

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_lap_records_elapsed(self):
        sw = Stopwatch()
        with sw.lap("work"):
            pass
        assert sw.totals()["work"] >= 0.0
        assert sw.counts()["work"] == 1

    def test_manual_record_accumulates(self):
        sw = Stopwatch()
        sw.record("a", 1.0)
        sw.record("a", 2.0)
        assert sw.totals()["a"] == 3.0
        assert sw.counts()["a"] == 2

    def test_summary_sorted_by_total(self):
        sw = Stopwatch()
        sw.record("small", 0.1)
        sw.record("big", 5.0)
        lines = sw.summary().splitlines()
        assert lines[0].startswith("big")

    def test_nested_laps(self):
        sw = Stopwatch()
        with sw.lap("outer"):
            with sw.lap("inner"):
                pass
        assert set(sw.totals()) == {"outer", "inner"}

    def test_lap_records_on_exception(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.lap("doomed"):
                raise RuntimeError("boom")
        assert sw.counts()["doomed"] == 1
        assert sw.totals()["doomed"] >= 0.0

    def test_lap_reentry_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.lap("again"):
                pass
        assert sw.counts()["again"] == 3

    def test_same_lap_object_reusable_sequentially(self):
        sw = Stopwatch()
        lap = sw.lap("reused")
        with lap:
            pass
        with lap:
            pass
        assert sw.counts()["reused"] == 2

    def test_shim_exports_obs_stopwatch(self):
        from repro.obs.spans import Stopwatch as ObsStopwatch

        assert Stopwatch is ObsStopwatch
