"""Unit tests for the stopwatch."""

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_lap_records_elapsed(self):
        sw = Stopwatch()
        with sw.lap("work"):
            pass
        assert sw.totals()["work"] >= 0.0
        assert sw.counts()["work"] == 1

    def test_manual_record_accumulates(self):
        sw = Stopwatch()
        sw.record("a", 1.0)
        sw.record("a", 2.0)
        assert sw.totals()["a"] == 3.0
        assert sw.counts()["a"] == 2

    def test_summary_sorted_by_total(self):
        sw = Stopwatch()
        sw.record("small", 0.1)
        sw.record("big", 5.0)
        lines = sw.summary().splitlines()
        assert lines[0].startswith("big")

    def test_nested_laps(self):
        sw = Stopwatch()
        with sw.lap("outer"):
            with sw.lap("inner"):
                pass
        assert set(sw.totals()) == {"outer", "inner"}
