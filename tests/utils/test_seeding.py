"""Unit tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.seeding import SeedSequenceFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(4)
        b = as_generator(42).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_children_are_independent_streams(self):
        gens = spawn_generators(7, 3)
        draws = [g.random(8).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_across_calls(self):
        a = [g.random(4).tolist() for g in spawn_generators(7, 3)]
        b = [g.random(4).tolist() for g in spawn_generators(7, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_from_generator_source(self):
        gens = spawn_generators(np.random.default_rng(3), 2)
        assert len(gens) == 2


class TestSeedSequenceFactory:
    def test_same_key_gives_distinct_streams_per_call(self):
        factory = SeedSequenceFactory(11)
        a = factory.generator("weather").random(4)
        b = factory.generator("weather").random(4)
        assert a.tolist() != b.tolist()

    def test_reproducible_for_same_seed(self):
        a = SeedSequenceFactory(11).generator("x").random(4)
        b = SeedSequenceFactory(11).generator("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        factory = SeedSequenceFactory(11)
        a = factory.generator("alpha").random(4)
        b = factory.generator("beta").random(4)
        assert a.tolist() != b.tolist()
