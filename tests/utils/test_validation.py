"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
    check_unit_interval,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, value):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", value)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_in_range("x", float("nan"), 0.0, 1.0)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_probabilities(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_rejects_outside(self, p):
        with pytest.raises(ValidationError):
            check_probability("p", p)


class TestCheckUnitInterval:
    def test_accepts_array(self):
        arr = check_unit_interval("a", np.linspace(0, 1, 5))
        assert arr.shape == (5,)

    def test_accepts_scalar(self):
        assert check_unit_interval("a", 0.3).shape == ()

    def test_rejects_out_of_range_element(self):
        with pytest.raises(ValidationError):
            check_unit_interval("a", np.array([0.2, 1.2]))

    def test_accepts_empty(self):
        assert check_unit_interval("a", np.array([])).size == 0


class TestCheckFinite:
    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_finite("a", np.array([1.0, np.inf]))

    def test_accepts_finite(self):
        assert check_finite("a", [1.0, 2.0]).tolist() == [1.0, 2.0]


class TestCheckShape:
    def test_exact_shape(self):
        arr = check_shape("m", np.zeros((2, 3)), (2, 3))
        assert arr.shape == (2, 3)

    def test_wildcard_dimension(self):
        check_shape("m", np.zeros((7, 3)), (-1, 3))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValidationError):
            check_shape("m", np.zeros(5), (5, 1))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValidationError):
            check_shape("m", np.zeros((2, 4)), (2, 3))
