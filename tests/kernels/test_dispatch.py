"""Unit tests for the :mod:`repro.kernels` dispatch layer.

The resolution rule is pure (requested value x numba availability), the
registry contract is "``kernel()`` returns a compiled callable or
``None``", and the backend must be frozen at import time from
``REPRO_KERNELS`` — each is pinned here without requiring numba to be
installed.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.kernels import (
    BACKENDS,
    active_backend,
    force_numpy,
    kernel,
    kernel_names,
    numba_version,
    requested_backend,
    warmup,
)
from repro.kernels import dispatch


class TestResolutionRule:
    @pytest.mark.parametrize(
        ("requested", "available", "expected"),
        [
            ("auto", True, "numba"),
            ("auto", False, "numpy"),
            ("numpy", True, "numpy"),
            ("numpy", False, "numpy"),
            ("numba", True, "numba"),
            ("numba", False, "numpy"),  # graceful fallback, not a crash
        ],
    )
    def test_requested_times_availability(self, requested, available, expected):
        assert dispatch._resolve_backend(requested, available) == expected

    def test_unknown_value_treated_as_auto(self):
        assert dispatch._resolve_backend("garbage", False) == "numpy"
        assert dispatch._resolve_backend("garbage", True) == "numba"

    def test_backends_tuple(self):
        assert BACKENDS == ("auto", "numpy", "numba")

    def test_active_backend_is_resolved(self):
        assert active_backend() in ("numpy", "numba")
        assert requested_backend() is not None

    def test_numba_version_none_on_numpy(self):
        if active_backend() == "numpy":
            assert numba_version() is None
        else:
            assert isinstance(numba_version(), str)


class TestRegistry:
    def test_unknown_name_returns_none(self):
        assert kernel("no.such.kernel") is None

    def test_numpy_backend_registers_nothing(self):
        if active_backend() == "numpy":
            assert kernel_names() == ()
        else:
            assert set(kernel_names()) >= {
                "budgets.fill",
                "fso.transmissivity",
                "propagate.step",
                "routing.relax",
            }

    def test_force_numpy_masks_every_kernel(self):
        with force_numpy():
            for name in kernel_names():
                assert kernel(name) is None
            assert kernel("routing.relax") is None

    def test_force_numpy_nests(self):
        with force_numpy():
            with force_numpy():
                assert kernel("routing.relax") is None
            assert kernel("routing.relax") is None

    def test_warmup_idempotent(self):
        first = warmup()
        assert warmup() == 0  # second call is a no-op
        if active_backend() == "numpy":
            assert first == 0


class TestEnvOverride:
    def test_repro_kernels_numpy_forces_fallback(self):
        # The backend is frozen at import time, so the override needs a
        # fresh interpreter.
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro import kernels; "
                "print(kernels.requested_backend(), kernels.active_backend(), "
                "len(kernels.kernel_names()))",
            ],
            env={
                **os.environ,
                "REPRO_KERNELS": "numpy",
                "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            },
            capture_output=True,
            text=True,
            check=True,
        )
        requested, active, n = out.stdout.split()
        assert requested == "numpy"
        assert active == "numpy"
        assert n == "0"
