"""Kernel-vs-NumPy equivalence: the determinism contract of DESIGN.md §13.

Admission decisions, served sets, and routed paths must be *exact*
across backends; continuous outputs (eta, fidelity, positions) must
agree to <= 1e-12. On the pure-NumPy backend the compiled side of each
comparison is the same code path, so these tests still pin the
``FlatGraph``-vs-dict routing refactor and the scalar fast paths against
the original vectorized implementations; with numba installed (the CI
kernels job) they additionally pin every compiled kernel against its
inline fallback.
"""

import math

import numpy as np
import pytest

from repro import kernels
from repro.channels.presets import paper_satellite_fso
from repro.engine.budgets import fill_budget_block
from repro.network.links import LinkPolicy
from repro.orbits.propagator import TwoBodyPropagator
from repro.orbits.walker import qntn_constellation
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.routing.bellman_ford import FlatGraph, bellman_ford
from repro.routing.metrics import path_transmissivity

needs_numba = pytest.mark.skipif(
    kernels.active_backend() != "numba",
    reason="compiled backend not active (numba not installed)",
)


def random_graph(rng, n_nodes=40, n_edges=160):
    graph = {f"n{i}": {} for i in range(n_nodes)}
    for _ in range(n_edges):
        a, b = rng.integers(0, n_nodes, size=2)
        if a == b:
            continue
        eta = float(rng.uniform(1e-6, 1.0))
        graph[f"n{a}"][f"n{b}"] = eta
        graph[f"n{b}"][f"n{a}"] = eta
    return graph


class TestRoutingExact:
    """FlatGraph.tree == dict-graph Bellman-Ford, bit for bit, always."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_graphs_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng)
        for source in ("n0", "n7", "n23"):
            flat = FlatGraph(graph).tree(source)
            # bellman_ford itself routes through FlatGraph now; rebuild
            # the reference with the pure-python relaxation explicitly.
            with kernels.force_numpy():
                ref = FlatGraph(graph).tree(source)
            assert flat.costs == ref.costs  # exact float equality
            assert flat.predecessors == ref.predecessors

    def test_bellman_ford_wrapper_unchanged(self):
        rng = np.random.default_rng(99)
        graph = random_graph(rng)
        result = bellman_ford(graph, "n0")
        flat = FlatGraph(graph).tree("n0")
        assert result.costs == flat.costs
        assert result.predecessors == flat.predecessors

    def test_disconnected_nodes_unreachable(self):
        graph = {"a": {"b": 0.5}, "b": {"a": 0.5}, "c": {}}
        tree = FlatGraph(graph).tree("a")
        assert tree.predecessors["c"] is None
        assert math.isinf(tree.costs["c"])


class TestScalarFastPaths:
    """The scalar fast paths added for the serve hot loop stay exact."""

    @pytest.mark.parametrize("eta", [0.0, 1e-9, 0.123456789, 0.5, 1.0])
    @pytest.mark.parametrize("convention", ["sqrt", "squared"])
    def test_fidelity_scalar_equals_array(self, eta, convention):
        scalar = entanglement_fidelity_from_transmissivity(eta, convention=convention)
        array = entanglement_fidelity_from_transmissivity(
            np.array([eta]), convention=convention
        )
        assert float(scalar) == float(array[0])

    def test_path_transmissivity_scalar_equals_array(self):
        rng = np.random.default_rng(5)
        for n in (1, 2, 5):
            etas = [float(x) for x in rng.uniform(0.01, 1.0, size=n)]
            assert path_transmissivity(etas) == float(
                np.prod(np.asarray(etas, dtype=float))
            )


@needs_numba
class TestCompiledKernels:
    """Compiled kernels vs the inline NumPy fallbacks (numba only)."""

    @pytest.fixture(scope="class")
    def block(self):
        rng = np.random.default_rng(11)
        slants = rng.uniform(400.0, 2500.0, size=(36, 240))
        els = rng.uniform(-0.1, math.pi / 2, size=(36, 240))
        return slants, els

    def test_fso_transmissivity_block(self, block):
        slants, els = block
        model = paper_satellite_fso()
        els = np.clip(els, 1e-4, None)  # atmosphere path needs el > 0
        compiled = model.transmissivity(slants, els, 500.0)
        with kernels.force_numpy():
            reference = model.transmissivity(slants, els, 500.0)
        np.testing.assert_allclose(compiled, reference, rtol=0.0, atol=1e-12)

    def test_budget_fill_block(self, block):
        slants, els = block
        model = paper_satellite_fso()
        policy = LinkPolicy()
        eta_c, usable_c = fill_budget_block(els, slants, model, policy, 500.0)
        with kernels.force_numpy():
            eta_n, usable_n = fill_budget_block(els, slants, model, policy, 500.0)
        # Admission is exact; eta within 1e-12.
        np.testing.assert_array_equal(usable_c, usable_n)
        np.testing.assert_allclose(eta_c, eta_n, rtol=0.0, atol=1e-12)

    def test_propagate_step(self):
        for include_j2 in (False, True):
            prop = TwoBodyPropagator(qntn_constellation(24), include_j2=include_j2)
            for t in (0.0, 5400.0, 86400.0):
                stepped = prop.propagate_step(t)
                with kernels.force_numpy():
                    reference = prop.propagate_step(t)
                np.testing.assert_allclose(stepped, reference, rtol=0.0, atol=1e-9)

    def test_routing_relax_compiled(self):
        rng = np.random.default_rng(7)
        graph = random_graph(rng)
        compiled = FlatGraph(graph).tree("n3")
        with kernels.force_numpy():
            reference = FlatGraph(graph).tree("n3")
        assert compiled.costs == reference.costs
        assert compiled.predecessors == reference.predecessors
