"""Tests for figure-series CSV writers."""

import pytest

from repro.errors import ValidationError
from repro.reporting.figures import FigureSeries, write_series_csv


class TestFigureSeries:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            FigureSeries("s", "x", "y", (1.0, 2.0), (1.0,))

    def test_meta_optional(self):
        series = FigureSeries("s", "x", "y", (1.0,), (2.0,))
        assert series.meta == {}


class TestWriteSeriesCsv:
    def test_roundtrip_readable(self, tmp_path):
        series = FigureSeries(
            "fig6",
            "n_satellites",
            "coverage_pct",
            (6.0, 12.0),
            (1.5, 3.5),
            meta={"paper_value_at_108": "55.17"},
        )
        path = write_series_csv(series, tmp_path / "fig6.csv")
        text = path.read_text()
        lines = text.strip().splitlines()
        assert lines[0].startswith("# paper_value_at_108")
        assert lines[1] == "n_satellites,coverage_pct"
        assert lines[2] == "6.0,1.5"

    def test_creates_parent_dirs(self, tmp_path):
        series = FigureSeries("s", "x", "y", (1.0,), (2.0,))
        path = write_series_csv(series, tmp_path / "deep" / "dir" / "s.csv")
        assert path.exists()
