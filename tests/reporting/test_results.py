"""Tests for experiment-record persistence."""

import pytest

from repro.core.comparison import ComparisonRow
from repro.core.threshold import transmissivity_threshold_experiment
from repro.errors import ValidationError
from repro.reporting.results import (
    ExperimentRecord,
    record_comparison,
    record_sweep,
    record_threshold,
)


class TestExperimentRecord:
    def test_json_roundtrip_string(self):
        record = ExperimentRecord(
            "demo",
            parameters={"n": 3},
            metrics={"x": 1.5},
            series={"s": {"x": [1.0], "y": [2.0]}},
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back == record

    def test_json_roundtrip_file(self, tmp_path):
        record = ExperimentRecord("demo", metrics={"x": 1.0})
        path = tmp_path / "out" / "record.json"
        record.to_json(path)
        assert ExperimentRecord.from_json(path) == record

    def test_rejects_unknown_version(self):
        with pytest.raises(ValidationError):
            ExperimentRecord.from_json('{"experiment": "x", "version": 99}')


class TestRecorders:
    def test_record_threshold(self):
        result = transmissivity_threshold_experiment(step=0.1)
        record = record_threshold(result, step=0.1)
        assert record.experiment == "fig5_threshold"
        assert record.metrics["threshold"] == pytest.approx(result.threshold)
        series = record.series["fidelity_vs_transmissivity"]
        assert len(series["x"]) == len(series["y"]) == 11

    def test_record_comparison(self):
        rows = [
            ComparisonRow("Space-Ground", 55.0, 57.0, 0.92),
            ComparisonRow("Air-Ground", 100.0, 100.0, 0.98),
        ]
        record = record_comparison(rows, seed=7)
        assert record.metrics["space_ground_coverage_pct"] == 55.0
        assert record.metrics["air_ground_fidelity"] == 0.98
        assert record.parameters == {"seed": 7}

    def test_record_sweep(self, small_ephemeris):
        from repro.core.sweeps import run_constellation_sweep

        sweep = run_constellation_sweep(
            sizes=[6, 12],
            ephemeris=small_ephemeris,
            duration_s=7200.0,
            step_s=60.0,
            n_requests=5,
            n_time_steps=5,
        )
        record = record_sweep(sweep, step_s=60.0)
        assert record.series["fig6_coverage"]["x"] == [6.0, 12.0]
        assert "coverage_at_max" in record.metrics

    def test_comparison_roundtrips(self):
        rows = [ComparisonRow("Air-Ground", 100.0, 100.0, 0.98)]
        record = record_comparison(rows)
        assert ExperimentRecord.from_json(record.to_json()) == record
