"""Tests for the repo-root bench perf-trajectory mirror."""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path

import pytest

# The bench helpers live next to the benches, not under src/repro (they
# are tooling, not library surface); import them the way the benches do.
_BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(_BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS_DIR))

reporting = importlib.import_module("reporting")


def _entry(sha: str, warm: float) -> dict:
    return {
        "bench": "demo",
        "git_sha": sha,
        "python": "3.11.0",
        "recorded_at_unix_s": 1_700_000_000.0,
        "workload": {"n": 1},
        "timings_s": {"warm": warm},
    }


class TestAppendTrajectory:
    def test_new_file_starts_history(self, tmp_path):
        path = reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        data = json.loads(path.read_text())
        assert data["bench"] == "demo"
        assert data["schema"] == 1
        assert [e["git_sha"] for e in data["trajectory"]] == ["aaa"]

    def test_new_sha_appends(self, tmp_path):
        reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=tmp_path)
        reporting.append_trajectory(_entry("bbb", 1.2), trajectory_dir=tmp_path)
        data = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert [e["git_sha"] for e in data["trajectory"]] == ["aaa", "bbb"]

    def test_same_sha_replaces_last_entry(self, tmp_path):
        reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=tmp_path)
        reporting.append_trajectory(_entry("aaa", 0.8), trajectory_dir=tmp_path)
        data = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert len(data["trajectory"]) == 1
        assert data["trajectory"][0]["timings_s"]["warm"] == 0.8

    def test_corrupt_file_restarts_history(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text("{broken")
        reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=tmp_path)
        data = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert len(data["trajectory"]) == 1

    def test_diffable_by_obs_report(self, tmp_path):
        from repro.obs.report import DiffThresholds, diff_summaries, load_summary

        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        pa = reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=a_dir)
        reporting.append_trajectory(_entry("aaa", 1.0), trajectory_dir=b_dir)
        pb = reporting.append_trajectory(_entry("bbb", 1.5), trajectory_dir=b_dir)
        a, b = load_summary(pa), load_summary(pb)
        assert a["kind"] == "trajectory" and b["trajectory_len"] == 2
        rows = diff_summaries(a, b, DiffThresholds(timing_pct=10.0))
        warm = next(r for r in rows if r.metric == "timing/warm")
        assert warm.delta == pytest.approx(50.0)
        assert warm.breached


class TestWriteBenchRecordMirror:
    def test_record_and_trajectory_written(self, tmp_path):
        path = reporting.write_bench_record(
            "demo",
            timings_s={"warm": 1.0},
            workload={"n": 1},
            results_dir=tmp_path,
        )
        record = json.loads(path.read_text())
        assert record["bench"] == "demo"
        trajectory = json.loads((tmp_path / "trajectory" / "BENCH_demo.json").read_text())
        assert trajectory["trajectory"][0]["timings_s"] == {"warm": 1.0}

    def test_rerun_same_sha_keeps_single_entry(self, tmp_path):
        for warm in (1.0, 0.9):
            reporting.write_bench_record(
                "demo",
                timings_s={"warm": warm},
                workload={"n": 1},
                results_dir=tmp_path,
            )
        trajectory = json.loads((tmp_path / "trajectory" / "BENCH_demo.json").read_text())
        assert len(trajectory["trajectory"]) == 1  # same git sha -> replaced
        assert trajectory["trajectory"][0]["timings_s"]["warm"] == 0.9
