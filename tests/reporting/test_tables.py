"""Tests for table rendering."""

import pytest

from repro.core.comparison import ComparisonRow
from repro.errors import ValidationError
from repro.reporting.tables import render_table, render_table_iii


class TestRenderTable:
    def test_contains_cells_and_headers(self):
        out = render_table(["a", "b"], [[1, "xy"], [22, "z"]])
        assert "a" in out and "xy" in out and "22" in out

    def test_title_first_line(self):
        out = render_table(["h"], [["v"]], title="CAPTION")
        assert out.splitlines()[0] == "CAPTION"

    def test_column_alignment(self):
        out = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1]])


class TestRenderTableIII:
    def test_paper_layout(self):
        rows = [
            ComparisonRow("Space-Ground", 55.17, 57.75, 0.96),
            ComparisonRow("Air-Ground", 100.0, 100.0, 0.98),
        ]
        out = render_table_iii(rows)
        assert "TABLE III" in out
        assert "Space-Ground" in out
        assert "55.17%" in out
        assert "0.98" in out
        assert "Serving requests" in out
