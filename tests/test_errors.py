"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ValidationError,
            errors.OrbitError,
            errors.KeplerConvergenceError,
            errors.ChannelError,
            errors.QuantumStateError,
            errors.NetworkError,
            errors.UnknownHostError,
            errors.LinkError,
            errors.RoutingError,
            errors.NoPathError,
            errors.SimulationError,
            errors.SchedulingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_validation_error_is_value_error(self):
        """Callers using plain ValueError handling still catch us."""
        assert issubclass(errors.ValidationError, ValueError)

    def test_unknown_host_is_key_error(self):
        assert issubclass(errors.UnknownHostError, KeyError)


class TestPayloads:
    def test_kepler_convergence_carries_diagnostics(self):
        exc = errors.KeplerConvergenceError(50, 1.25e-3)
        assert exc.iterations == 50
        assert exc.residual == 1.25e-3
        assert "50" in str(exc)

    def test_no_path_carries_endpoints(self):
        exc = errors.NoPathError("a", "b")
        assert exc.source == "a"
        assert exc.destination == "b"
        assert "a" in str(exc) and "b" in str(exc)

    def test_unknown_host_carries_name(self):
        exc = errors.UnknownHostError("ghost")
        assert exc.name == "ghost"
