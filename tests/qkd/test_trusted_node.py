"""Tests for the trusted-node fiber QKD baseline."""

import pytest

from repro.channels.fiber import FiberChannelModel
from repro.errors import ValidationError
from repro.qkd.trusted_node import TrustedNodeChain, fiber_bb84_key_rate_hz


class TestFiberBb84KeyRate:
    def test_short_hop_high_rate(self):
        assert fiber_bb84_key_rate_hz(10.0) > 1e6

    def test_rate_decreases_with_length(self):
        rates = [fiber_bb84_key_rate_hz(length) for length in (10.0, 50.0, 100.0, 200.0)]
        assert rates == sorted(rates, reverse=True)

    def test_dark_counts_kill_long_hops(self):
        """Far enough out, dark counts dominate and the rate hits zero."""
        assert fiber_bb84_key_rate_hz(600.0) == 0.0

    def test_city_to_city_direct_is_weak(self):
        """TTU-EPB (~127 km) direct fiber QKD still works — unlike direct
        fiber entanglement distribution at the paper's threshold — but at
        a heavily reduced rate (the trusted-node motivation)."""
        direct = fiber_bb84_key_rate_hz(127.0)
        short = fiber_bb84_key_rate_hz(10.0)
        assert 0.0 < direct < short / 5.0

    def test_better_fiber_helps(self):
        good = fiber_bb84_key_rate_hz(100.0, fiber=FiberChannelModel(0.15))
        bad = fiber_bb84_key_rate_hz(100.0, fiber=FiberChannelModel(0.5))
        assert good > bad

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            fiber_bb84_key_rate_hz(10.0, pulse_rate_hz=0.0)
        with pytest.raises(ValidationError):
            fiber_bb84_key_rate_hz(10.0, detector_efficiency=1.5)


class TestTrustedNodeChain:
    def test_hop_geometry(self):
        chain = TrustedNodeChain(130.0, 3)
        assert chain.n_hops == 4
        assert chain.hop_length_km == pytest.approx(32.5)

    def test_nodes_raise_end_to_end_rate(self):
        """Splitting a long route into shorter trusted hops boosts rate —
        the reason trusted-node networks exist."""
        direct = TrustedNodeChain(130.0, 0).key_rate_hz()
        relayed = TrustedNodeChain(130.0, 3).key_rate_hz()
        assert relayed > direct

    def test_never_supports_entanglement(self):
        """The paper's core criticism of the baseline (Section I-A)."""
        assert not TrustedNodeChain(130.0, 5).supports_entanglement

    def test_minimum_nodes_for_rate(self):
        target = TrustedNodeChain(130.0, 3).key_rate_hz()
        n = TrustedNodeChain.minimum_nodes_for_rate(130.0, target)
        assert n is not None and n <= 3
        # The found configuration actually achieves the target.
        assert TrustedNodeChain(130.0, n).key_rate_hz() >= target

    def test_minimum_nodes_unreachable(self):
        assert TrustedNodeChain.minimum_nodes_for_rate(130.0, 1e18, max_nodes=4) is None

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            TrustedNodeChain(0.0, 1)
        with pytest.raises(ValidationError):
            TrustedNodeChain(100.0, -1)
