"""Tests for the CHSH security witness."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.qkd.e91 import TSIRELSON_BOUND, chsh_from_transmissivity, chsh_value
from repro.quantum.fidelity import bell_pair_after_loss
from repro.quantum.states import bell_state, density_matrix, ket, maximally_mixed


class TestChshValue:
    def test_perfect_pair_saturates_tsirelson(self):
        s = chsh_value(density_matrix(bell_state()))
        assert s == pytest.approx(TSIRELSON_BOUND, abs=1e-12)

    def test_product_state_classical(self):
        s = chsh_value(density_matrix(ket(0, 0)))
        assert s <= 2.0 + 1e-9

    def test_maximally_mixed_zero(self):
        assert chsh_value(maximally_mixed(2)) == pytest.approx(0.0, abs=1e-12)

    def test_decreases_with_damping(self):
        values = [chsh_from_transmissivity(eta) for eta in (1.0, 0.9, 0.7, 0.4)]
        assert values == sorted(values, reverse=True)

    def test_paper_threshold_still_violates_bell(self):
        """Single-link eta = 0.7 pairs still certify entanglement (S > 2)."""
        assert chsh_from_transmissivity(0.7) > 2.0

    def test_deep_loss_loses_violation(self):
        assert chsh_from_transmissivity(0.05) < 2.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_bounded_by_tsirelson(self, eta):
        assert 0.0 <= chsh_from_transmissivity(eta) <= TSIRELSON_BOUND + 1e-9

    def test_custom_angles(self):
        rho = density_matrix(bell_state())
        # Degenerate angles give the trivial value 2 (a = a', b = b' at 0).
        s = chsh_value(rho, angles_a=(0.0, 0.0), angles_b=(0.0, 0.0))
        assert s == pytest.approx(2.0, abs=1e-9)

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValidationError):
            chsh_value(maximally_mixed(1))

    def test_rejects_bad_eta(self):
        with pytest.raises(ValidationError):
            chsh_from_transmissivity(-0.1)

    def test_relation_to_fidelity_for_damped_pairs(self):
        """For damped Bell pairs S tracks the coherence sqrt(eta):
        S = sqrt(2) * (eta_diag_contrib + coherence)."""
        for eta in (0.9, 0.5):
            rho = bell_pair_after_loss(eta)
            s = chsh_value(rho)
            zz = 1.0  # <ZZ> is unchanged by one-sided damping? not exactly
            assert s > 0.0
            # The witness must be monotone in eta (already checked) and
            # equal the analytic value sqrt(2)*( <ZZ> + <XX> ).
            from repro.quantum.operators import PAULI_X, PAULI_Z, tensor

            ezz = float(np.real(np.trace(tensor(PAULI_Z, PAULI_Z) @ rho)))
            exx = float(np.real(np.trace(tensor(PAULI_X, PAULI_X) @ rho)))
            assert s == pytest.approx(math.sqrt(2.0) * (ezz + exx), abs=1e-9)
