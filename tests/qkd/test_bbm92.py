"""Tests for entanglement-based QKD over the quantum layer."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.network.protocols import distribute_entanglement
from repro.qkd.bbm92 import (
    bbm92_key_rate_hz,
    bbm92_secret_fraction,
    binary_entropy,
    qber_from_state,
    qber_from_transmissivity,
)
from repro.quantum.states import bell_state, density_matrix, maximally_mixed


class TestBinaryEntropy:
    def test_endpoints_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.11) == pytest.approx(binary_entropy(0.89))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_bounded(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            binary_entropy(1.1)


class TestQber:
    def test_perfect_pair_error_free(self):
        e_z, e_x = qber_from_state(density_matrix(bell_state()))
        assert e_z == pytest.approx(0.0, abs=1e-12)
        assert e_x == pytest.approx(0.0, abs=1e-12)

    def test_maximally_mixed_half_errors(self):
        e_z, e_x = qber_from_state(maximally_mixed(2))
        assert e_z == pytest.approx(0.5)
        assert e_x == pytest.approx(0.5)

    def test_damping_raises_both_errors(self):
        e_z_hi, e_x_hi = qber_from_transmissivity(0.9)
        e_z_lo, e_x_lo = qber_from_transmissivity(0.4)
        assert e_z_lo > e_z_hi >= 0.0
        assert e_x_lo > e_x_hi >= 0.0

    def test_closed_relation_z_error(self):
        """For one-sided AD of |Phi+>, e_z = (1 - eta)/2 exactly."""
        for eta in (0.3, 0.7, 0.95):
            e_z, _ = qber_from_transmissivity(eta)
            assert e_z == pytest.approx((1.0 - eta) / 2.0, abs=1e-12)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_state_and_transmissivity_paths_agree(self, eta):
        from repro.quantum.fidelity import bell_pair_after_loss

        via_state = qber_from_state(bell_pair_after_loss(eta))
        via_eta = qber_from_transmissivity(eta)
        assert via_state[0] == pytest.approx(via_eta[0], abs=1e-12)
        assert via_state[1] == pytest.approx(via_eta[1], abs=1e-12)

    def test_rejects_single_qubit(self):
        with pytest.raises(ValidationError):
            qber_from_state(maximally_mixed(1))


class TestSecretFraction:
    def test_error_free_full_rate(self):
        assert bbm92_secret_fraction(0.0, 0.0) == 1.0

    def test_clamped_at_zero(self):
        assert bbm92_secret_fraction(0.5, 0.5) == 0.0

    def test_eleven_percent_threshold(self):
        """The symmetric-QBER security threshold sits near 11 %."""
        assert bbm92_secret_fraction(0.10, 0.10) > 0.0
        assert bbm92_secret_fraction(0.12, 0.12) == 0.0


class TestKeyRate:
    def test_qkd_viability_boundary_near_the_paper_threshold(self):
        """The BBM92 entropic bound goes positive at path eta ~ 0.71 — the
        paper's per-link 0.7 threshold is almost exactly the QKD viability
        boundary for a single-link path, while a threshold-grade two-hop
        path (0.49) distils no key."""
        assert bbm92_key_rate_hz(0.49, pair_rate_hz=1e4) == 0.0
        assert bbm92_key_rate_hz(0.72, pair_rate_hz=1e4) > 0.0
        # HAP-grade paths (eta ~ 0.93) give comfortable key rates.
        assert bbm92_key_rate_hz(0.93, pair_rate_hz=1e4) > 1e3

    def test_rate_scales_with_pair_rate(self):
        r1 = bbm92_key_rate_hz(0.8, pair_rate_hz=1e3)
        r2 = bbm92_key_rate_hz(0.8, pair_rate_hz=2e3)
        assert r2 == pytest.approx(2 * r1)

    def test_monotone_in_transmissivity(self):
        rates = [bbm92_key_rate_hz(eta, pair_rate_hz=1e4) for eta in (0.72, 0.8, 0.9, 1.0)]
        assert rates == sorted(rates)

    def test_explicit_state_override(self):
        pair = distribute_entanglement([0.8])
        via_rho = bbm92_key_rate_hz(0.0, pair_rate_hz=1e3, rho=pair.rho)
        via_eta = bbm92_key_rate_hz(0.8, pair_rate_hz=1e3)
        assert via_rho == pytest.approx(via_eta)

    def test_dead_channel_no_key(self):
        assert bbm92_key_rate_hz(0.0, pair_rate_hz=1e4) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            bbm92_key_rate_hz(0.8, pair_rate_hz=-1.0)
        with pytest.raises(ValidationError):
            bbm92_key_rate_hz(0.8, pair_rate_hz=1.0, sifting_factor=0.0)
