"""Cross-module property-based tests on system invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.timing import EntanglementRateModel
from repro.network.protocols import distribute_entanglement, purified_delivery
from repro.qkd.bbm92 import bbm92_secret_fraction, qber_from_transmissivity
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.routing.bellman_ford import bellman_ford
from repro.routing.dijkstra import dijkstra

etas = st.floats(min_value=0.0, max_value=1.0)
good_etas = st.floats(min_value=0.05, max_value=1.0)


def random_connected_graph(rng, n):
    names = [f"v{i}" for i in range(n)]
    graph = {name: {} for name in names}
    order = rng.permutation(n)
    for a, b in zip(order, order[1:]):
        eta = float(rng.uniform(0.05, 1.0))
        graph[names[a]][names[b]] = eta
        graph[names[b]][names[a]] = eta
    for _ in range(n):
        i, j = rng.choice(n, size=2, replace=False)
        eta = float(rng.uniform(0.05, 1.0))
        graph[names[i]][names[j]] = eta
        graph[names[j]][names[i]] = eta
    return graph, names


class TestRoutingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=4, max_value=14))
    def test_symmetric_costs_on_undirected_graphs(self, seed, n):
        """cost(a -> b) == cost(b -> a) on symmetric link graphs."""
        rng = np.random.default_rng(seed)
        graph, names = random_connected_graph(rng, n)
        fwd = bellman_ford(graph, names[0]).costs[names[-1]]
        back = bellman_ford(graph, names[-1]).costs[names[0]]
        assert fwd == pytest.approx(back, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=4, max_value=14))
    def test_triangle_inequality_of_costs(self, seed, n):
        """cost(a -> c) <= cost(a -> b) + cost(b -> c)."""
        rng = np.random.default_rng(seed)
        graph, names = random_connected_graph(rng, n)
        a, b, c = names[0], names[n // 2], names[-1]
        costs_a = bellman_ford(graph, a).costs
        costs_b = bellman_ford(graph, b).costs
        assert costs_a[c] <= costs_a[b] + costs_b[c] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=4, max_value=14))
    def test_dijkstra_bellman_ford_equivalence(self, seed, n):
        rng = np.random.default_rng(seed)
        graph, names = random_connected_graph(rng, n)
        bf = bellman_ford(graph, names[0]).costs
        dj, _ = dijkstra(graph, names[0])
        for node in names:
            assert bf[node] == pytest.approx(dj[node], abs=1e-9)


class TestQuantumLayerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(etas, min_size=1, max_size=4))
    def test_fidelity_never_below_half_nor_above_one(self, path):
        pair = distribute_entanglement(path)
        f = pair.fidelity("sqrt")
        assert 0.5 - 1e-12 <= f <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(etas, etas)
    def test_fidelity_monotone_in_path_quality(self, a, b):
        """A strictly better path never delivers lower fidelity."""
        lo, hi = sorted((a, b))
        f_lo = float(entanglement_fidelity_from_transmissivity(lo))
        f_hi = float(entanglement_fidelity_from_transmissivity(hi))
        assert f_hi >= f_lo

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=1.0),
        st.integers(min_value=0, max_value=2),
    )
    def test_purification_never_reduces_fidelity_above_gain_threshold(self, eta, rounds):
        """Recurrence purification gains only for Werner fidelity > 1/2;
        eta >= 0.3 keeps the twirled pair safely in the gain regime."""
        base = purified_delivery(eta, 0).fidelity
        out = purified_delivery(eta, rounds)
        assert out.fidelity >= base - 1e-9
        assert 0.0 < out.success_probability <= 1.0

    def test_purification_loses_below_gain_threshold(self):
        """Documented boundary: at eta = 0.125 the twirled Werner fidelity
        is below 1/2 and a round makes things worse."""
        assert purified_delivery(0.125, 1).fidelity < purified_delivery(0.125, 0).fidelity

    @settings(max_examples=40, deadline=None)
    @given(etas)
    def test_qber_consistency_with_fidelity(self, eta):
        """Higher fidelity implies lower Z-basis QBER, and the secret
        fraction is zero whenever either QBER crosses 50 %."""
        e_z, e_x = qber_from_transmissivity(eta)
        assert 0.0 <= e_z <= 0.5 + 1e-12
        assert 0.0 <= e_x <= 0.5 + 1e-12
        assert bbm92_secret_fraction(e_z, e_x) <= 1.0


class TestThroughputInvariants:
    @settings(max_examples=40, deadline=None)
    @given(etas, st.floats(min_value=0.1, max_value=1.0))
    def test_pair_rate_bounded_by_source_rate(self, eta, det):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=det)
        rate = float(np.asarray(model.pair_rate_hz(eta)))
        assert 0.0 <= rate <= 1e6

    @settings(max_examples=40, deadline=None)
    @given(etas)
    def test_time_to_first_pair_at_least_mean_interval(self, eta):
        model = EntanglementRateModel(source_rate_hz=1e6, detector_efficiency=0.9)
        t = model.time_to_first_pair_s(eta)
        rate = float(np.asarray(model.pair_rate_hz(eta)))
        if rate > 0:
            assert t >= 1.0 / rate - 1e-15
        else:
            assert math.isinf(t)


class TestLinkBudgetInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=520.0, max_value=2500.0),
        st.floats(min_value=0.2, max_value=math.pi / 2),
    )
    def test_paper_satellite_preset_eta_bounds(self, slant, elev):
        from repro.channels.presets import paper_satellite_fso

        eta = float(np.asarray(paper_satellite_fso().transmissivity(slant, elev, 500.0)))
        assert 0.0 <= eta <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=400.0))
    def test_fiber_eta_decreasing(self, length):
        from repro.channels.presets import paper_fiber

        fiber = paper_fiber()
        assert fiber.transmissivity(length + 1.0) < fiber.transmissivity(length) + 1e-15
