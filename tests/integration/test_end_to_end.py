"""End-to-end integration tests across the whole stack.

These exercise the public API the way the examples and benchmarks do,
with reduced sizes so the suite stays fast.
"""

import numpy as np
import pytest

from repro import (
    AirGroundArchitecture,
    SpaceGroundArchitecture,
    compare_architectures,
    constellation_coverage_sweep,
    transmissivity_threshold_experiment,
)
from repro.reporting.tables import render_table_iii


@pytest.fixture(scope="module")
def day_ephemeris():
    from repro.orbits.ephemeris import generate_movement_sheet
    from repro.orbits.walker import qntn_constellation

    return generate_movement_sheet(qntn_constellation(36), duration_s=86400.0, step_s=300.0)


class TestFigureFivePipeline:
    def test_threshold_workflow(self):
        result = transmissivity_threshold_experiment(step=0.01)
        # The paper chooses 0.7 because it clears the 0.9 requirement.
        assert result.threshold <= 0.7
        idx_07 = int(round(0.7 / 0.01))
        assert result.fidelities[idx_07] > 0.9


class TestCoveragePipeline:
    def test_sweep_shapes_and_monotonicity(self, day_ephemeris):
        sizes = [6, 12, 24, 36]
        results = constellation_coverage_sweep(
            sizes, ephemeris_factory=lambda n: day_ephemeris.subset(range(n)), step_s=300.0
        )
        assert [r.n_satellites for r in results] == sizes
        percentages = [r.percentage for r in results]
        assert percentages == sorted(percentages)
        assert percentages[-1] > percentages[0]


class TestComparisonPipeline:
    def test_table_iii_renders(self, day_ephemeris):
        space = SpaceGroundArchitecture(
            36, duration_s=86400.0, step_s=300.0, ephemeris=day_ephemeris
        )
        air = AirGroundArchitecture(duration_s=86400.0, step_s=300.0)
        rows = compare_architectures(
            n_requests=10, n_time_steps=10, seed=1, space=space, air=air
        )
        text = render_table_iii(rows)
        assert "Space-Ground" in text and "Air-Ground" in text

    def test_coverage_approximates_served_fraction(self, day_ephemeris):
        """Served % tracks coverage %: requests succeed when covered."""
        space = SpaceGroundArchitecture(
            36, duration_s=86400.0, step_s=300.0, ephemeris=day_ephemeris
        )
        result = space.evaluate(n_requests=30, n_time_steps=50, seed=2)
        assert result.served_percentage == pytest.approx(
            result.coverage_percentage, abs=15.0
        )


class TestObjectLevelAgainstVectorized:
    def test_full_request_agreement_on_subsample(self, day_ephemeris):
        """NetworkSimulator (objects + Bellman-Ford) and the array engine
        must produce identical served/eta decisions."""
        space = SpaceGroundArchitecture(
            12,
            duration_s=86400.0,
            step_s=300.0,
            ephemeris=day_ephemeris.subset(range(12)),
        )
        analysis = space.analysis()
        simulator = space.build_simulator()
        pairs = [("ttu-0", "epb-5"), ("ornl-2", "epb-11"), ("ttu-4", "ornl-8")]
        for t_idx in np.linspace(0, analysis.n_times - 1, 12).astype(int):
            t_s = float(analysis.times_s[t_idx])
            fast = analysis.serve(pairs, int(t_idx))
            for (src, dst), eta in zip(pairs, fast):
                outcome = simulator.serve_request(src, dst, t_s)
                assert outcome.served == (eta is not None)
                if eta is not None:
                    assert outcome.path_transmissivity == pytest.approx(eta, rel=1e-9)


class TestMovementSheetWorkflow:
    def test_csv_export_import_drives_same_results(self, tmp_path):
        """The paper's STK-sheet workflow: export, re-import, same network."""
        from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet
        from repro.orbits.walker import qntn_constellation

        original = generate_movement_sheet(
            qntn_constellation(6), duration_s=3600.0, step_s=300.0
        )
        path = tmp_path / "sheets.csv"
        original.to_csv(path)
        imported = Ephemeris.from_csv(path)

        a = SpaceGroundArchitecture(
            6, duration_s=3600.0, step_s=300.0, ephemeris=original
        ).evaluate(n_requests=5, n_time_steps=5, seed=3)
        b = SpaceGroundArchitecture(
            6, duration_s=3600.0, step_s=300.0, ephemeris=imported
        ).evaluate(n_requests=5, n_time_steps=5, seed=3)
        assert a.coverage_percentage == b.coverage_percentage
        assert a.service.fidelities == b.service.fidelities
