"""Failure-injection tests: satellite outages, HAP loss, degraded links.

The paper's coverage numbers assume every deployed satellite works. These
tests knock components out and check the system degrades the way a
network operator would expect — gracefully and monotonically.
"""

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.network.hap import HAP
from repro.network.links import LinkPolicy
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, build_qntn_ground_network


class TestSatelliteOutages:
    @pytest.fixture(scope="class")
    def day_eph(self):
        from repro.orbits.ephemeris import generate_movement_sheet
        from repro.orbits.walker import qntn_constellation

        return generate_movement_sheet(
            qntn_constellation(36), duration_s=86400.0, step_s=300.0
        )

    def test_killing_satellites_never_increases_coverage(self, day_eph, sites):
        full = SpaceGroundAnalysis(day_eph, sites, paper_satellite_fso())
        full_mask = full.all_pairs_connected()
        rng = np.random.default_rng(3)
        surviving = sorted(rng.choice(36, size=24, replace=False).tolist())
        degraded = SpaceGroundAnalysis(
            day_eph.subset(surviving), sites, paper_satellite_fso()
        )
        degraded_mask = degraded.all_pairs_connected()
        # Losing satellites can only remove covered instants.
        assert not np.any(degraded_mask & ~full_mask)
        assert degraded_mask.sum() <= full_mask.sum()

    def test_single_satellite_loss_is_graceful(self, day_eph, sites):
        """Losing any one satellite costs at most a few coverage points."""
        full = SpaceGroundAnalysis(day_eph, sites, paper_satellite_fso())
        base = full.all_pairs_connected().mean()
        survivors = [i for i in range(36) if i != 7]
        degraded = SpaceGroundAnalysis(
            day_eph.subset(survivors), sites, paper_satellite_fso()
        )
        dropped = degraded.all_pairs_connected().mean()
        assert base - dropped < 0.05

    def test_total_loss_means_zero_coverage(self, day_eph, sites):
        lone = SpaceGroundAnalysis(day_eph.subset([0]), sites, paper_satellite_fso())
        # One satellite covers at most a small slice of the day.
        assert lone.all_pairs_connected().mean() < 0.1


class TestHapFailures:
    def test_hap_loss_partitions_the_network(self):
        """Without the HAP, no inter-LAN route exists at all — it is the
        air-ground architecture's single point of failure."""
        network = build_qntn_ground_network()
        simulator = NetworkSimulator(network)  # no HAP attached
        assert not simulator.all_lans_connected(0.0)
        outcome = simulator.serve_request("ttu-0", "epb-0", 0.0)
        assert not outcome.served

    def test_degraded_hap_link_budget(self):
        """Halving receiver efficiency pushes HAP links below threshold."""
        from dataclasses import replace

        network = build_qntn_ground_network()
        broken = replace(paper_hap_fso(), receiver_efficiency=0.5)
        attach_hap(network, HAP(), broken)
        simulator = NetworkSimulator(network)
        assert not simulator.serve_request("ttu-0", "epb-0", 0.0).served

    def test_stricter_policy_disconnects(self):
        """Raising the threshold to 0.99 disqualifies every FSO link."""
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        strict = NetworkSimulator(
            network, policy=LinkPolicy(transmissivity_threshold=0.99)
        )
        assert not strict.all_lans_connected(0.0)
        # Intra-LAN fiber still works at 0.99.
        assert strict.serve_request("ttu-0", "ttu-1", 0.0).served


class TestDegradedRouting:
    def test_partial_graph_still_routes_where_possible(self, hap_simulator):
        graph = hap_simulator.link_graph(0.0)
        # Remove the HAP's link to the destination's whole LAN.
        cut = {
            u: {v: eta for v, eta in nbrs.items() if not (u == "hap-0" and v.startswith("epb"))
                and not (v == "hap-0" and u.startswith("epb"))}
            for u, nbrs in graph.items()
        }
        from repro.errors import NoPathError
        from repro.routing.bellman_ford import shortest_path

        # TTU <-> ORNL still routes...
        path, _ = shortest_path(cut, "ttu-0", "ornl-0")
        assert "hap-0" in path
        # ...but EPB is now unreachable from TTU.
        with pytest.raises(NoPathError):
            shortest_path(cut, "ttu-0", "epb-0")
