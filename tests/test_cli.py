"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly-to-space"])

    def test_threshold_defaults(self):
        args = build_parser().parse_args(["threshold"])
        assert args.step == 0.01
        assert args.target == 0.9

    def test_sweep_sizes(self):
        args = build_parser().parse_args(["sweep", "--sizes", "6", "12"])
        assert args.sizes == [6, 12]


class TestThresholdCommand:
    def test_prints_figure_and_threshold(self, capsys):
        assert main(["threshold"]) == 0
        out = capsys.readouterr().out
        assert "FIG. 5" in out
        assert "0.70" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(["threshold", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5_fidelity_vs_transmissivity.csv").exists()


class TestSweepCommands:
    def test_coverage_small(self, capsys, tmp_path):
        code = main(
            [
                "coverage",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG. 6" in out
        assert (tmp_path / "fig6_coverage_vs_satellites.csv").exists()

    def test_sweep_small(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIGS. 6-8" in out
        assert (tmp_path / "fig7_served_requests_vs_satellites.csv").exists()
        assert (tmp_path / "fig8_fidelity_vs_satellites.csv").exists()


class TestCompareCommand:
    def test_reduced_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--satellites", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "Air-Ground" in out


class TestWeatherCommand:
    def test_small_study(self, capsys):
        assert main(["weather", "--trials", "10", "--requests", "5"]) == 0
        out = capsys.readouterr().out
        assert "WEATHER MONTE CARLO" in out
        assert "availability" in out


class TestDesignCommand:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "design",
                "--inclinations", "40", "53",
                "--altitudes", "500",
                "--step", "480",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ORBIT DESIGN SWEEP" in out
        assert "best design: 40 deg" in out


class TestReportCommand:
    def test_small_report(self, capsys, tmp_path):
        code = main(
            [
                "report",
                "--out", str(tmp_path),
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QNTN reproduction report" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table3_comparison.json").exists()

    def test_out_required(self):
        with pytest.raises(SystemExit):
            main(["report"])


class TestHybridCommand:
    def test_reduced_hybrid(self, capsys):
        code = main(
            [
                "hybrid",
                "--satellites", "12",
                "--duty-hours", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HYBRID STUDY" in out
        assert "Space-Ground" in out


class TestTelemetryFlags:
    def test_verbose_flag_counts(self):
        args = build_parser().parse_args(["-vv", "threshold"])
        assert args.verbose == 2
        assert build_parser().parse_args(["threshold"]).verbose == 0

    def test_verbose_logs_side_paths(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["-v", "threshold", "--csv", str(tmp_path)]) == 0
        assert any("series written to" in r.message for r in caplog.records)

    def test_side_paths_not_printed_to_stdout(self, tmp_path, capsys):
        assert main(["threshold", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "series written to" not in out
        assert "FIG. 5" in out  # result table still on stdout

    def test_profile_prints_table(self, capsys):
        assert main(["--profile", "threshold"]) == 0
        out = capsys.readouterr().out
        assert "RUN PROFILE" in out
        assert "threshold" in out

    def test_telemetry_writes_manifest(self, tmp_path):
        import json

        from repro import obs

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "--telemetry", str(manifest_path),
                "sweep",
                "--sizes", "6",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        assert not obs.enabled()  # flag restored after the run
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "sweep"
        assert "sweep/serve" in manifest["profile"]
        assert "sweep/propagate" in manifest["profile"]
        fidelity = manifest["metrics"]["network.fidelity"]
        assert fidelity["count"] > 0
        # Exact-mean contract: the histogram mean reproduces the printed
        # full-size fidelity.
        assert fidelity["mean"] == pytest.approx(fidelity["sum"] / fidelity["count"])

    def test_telemetry_records_worker_reports(self, tmp_path):
        import json

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "--telemetry", str(manifest_path),
                "sweep",
                "--sizes", "6",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "4",
                "--workers", "2",
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["workers"]) == 2
        for report in manifest["workers"]:
            assert report["n_steps"] > 0
            assert report["timings_s"]["total"] >= 0.0
