"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly-to-space"])

    def test_threshold_defaults(self):
        args = build_parser().parse_args(["threshold"])
        assert args.step == 0.01
        assert args.target == 0.9

    def test_sweep_sizes(self):
        args = build_parser().parse_args(["sweep", "--sizes", "6", "12"])
        assert args.sizes == [6, 12]


class TestThresholdCommand:
    def test_prints_figure_and_threshold(self, capsys):
        assert main(["threshold"]) == 0
        out = capsys.readouterr().out
        assert "FIG. 5" in out
        assert "0.70" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(["threshold", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5_fidelity_vs_transmissivity.csv").exists()


class TestSweepCommands:
    def test_coverage_small(self, capsys, tmp_path):
        code = main(
            [
                "coverage",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG. 6" in out
        assert (tmp_path / "fig6_coverage_vs_satellites.csv").exists()

    def test_sweep_small(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIGS. 6-8" in out
        assert (tmp_path / "fig7_served_requests_vs_satellites.csv").exists()
        assert (tmp_path / "fig8_fidelity_vs_satellites.csv").exists()


class TestCompareCommand:
    def test_reduced_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--satellites", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "Air-Ground" in out


class TestWeatherCommand:
    def test_small_study(self, capsys):
        assert main(["weather", "--trials", "10", "--requests", "5"]) == 0
        out = capsys.readouterr().out
        assert "WEATHER MONTE CARLO" in out
        assert "availability" in out


class TestDesignCommand:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "design",
                "--inclinations", "40", "53",
                "--altitudes", "500",
                "--step", "480",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ORBIT DESIGN SWEEP" in out
        assert "best design: 40 deg" in out


class TestReportCommand:
    def test_small_report(self, capsys, tmp_path):
        code = main(
            [
                "report",
                "--out", str(tmp_path),
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QNTN reproduction report" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table3_comparison.json").exists()

    def test_out_required(self):
        with pytest.raises(SystemExit):
            main(["report"])


class TestHybridCommand:
    def test_reduced_hybrid(self, capsys):
        code = main(
            [
                "hybrid",
                "--satellites", "12",
                "--duty-hours", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HYBRID STUDY" in out
        assert "Space-Ground" in out
