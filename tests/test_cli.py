"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly-to-space"])

    def test_threshold_defaults(self):
        args = build_parser().parse_args(["threshold"])
        assert args.step == 0.01
        assert args.target == 0.9

    def test_sweep_sizes(self):
        args = build_parser().parse_args(["sweep", "--sizes", "6", "12"])
        assert args.sizes == [6, 12]


class TestThresholdCommand:
    def test_prints_figure_and_threshold(self, capsys):
        assert main(["threshold"]) == 0
        out = capsys.readouterr().out
        assert "FIG. 5" in out
        assert "0.70" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(["threshold", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5_fidelity_vs_transmissivity.csv").exists()


class TestSweepCommands:
    def test_coverage_small(self, capsys, tmp_path):
        code = main(
            [
                "coverage",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG. 6" in out
        assert (tmp_path / "fig6_coverage_vs_satellites.csv").exists()

    def test_sweep_small(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
                "--csv", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIGS. 6-8" in out
        assert (tmp_path / "fig7_served_requests_vs_satellites.csv").exists()
        assert (tmp_path / "fig8_fidelity_vs_satellites.csv").exists()


class TestCompareCommand:
    def test_reduced_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--satellites", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "Air-Ground" in out


class TestWeatherCommand:
    def test_small_study(self, capsys):
        assert main(["weather", "--trials", "10", "--requests", "5"]) == 0
        out = capsys.readouterr().out
        assert "WEATHER MONTE CARLO" in out
        assert "availability" in out


class TestDesignCommand:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "design",
                "--inclinations", "40", "53",
                "--altitudes", "500",
                "--step", "480",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ORBIT DESIGN SWEEP" in out
        assert "best design: 40 deg" in out


class TestReportCommand:
    def test_small_report(self, capsys, tmp_path):
        code = main(
            [
                "report",
                "--out", str(tmp_path),
                "--sizes", "6", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QNTN reproduction report" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "table3_comparison.json").exists()

    def test_out_required(self):
        with pytest.raises(SystemExit):
            main(["report"])

    def test_render_mode_writes_html(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "run.json"
        manifest.write_text(json.dumps({"command": "sweep", "metrics": {}}))
        assert main(["report", str(manifest)]) == 0
        page = (tmp_path / "run.html").read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "http://" not in page and "https://" not in page  # self-contained

    def test_render_mode_respects_out_and_format(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "run.json"
        manifest.write_text(json.dumps({"command": "sweep"}))
        out = tmp_path / "custom.html"
        assert main(["report", str(manifest), "--out", str(out)]) == 0
        assert out.exists()
        assert main(["report", str(manifest), "--format", "ascii"]) == 0
        assert "RUN REPORT" in capsys.readouterr().out

    def test_render_mode_bad_manifest_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["report", str(bad)]) == 2
        assert "repro report:" in capsys.readouterr().err


class TestHybridCommand:
    def test_reduced_hybrid(self, capsys):
        code = main(
            [
                "hybrid",
                "--satellites", "12",
                "--duty-hours", "12",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HYBRID STUDY" in out
        assert "Space-Ground" in out


class TestTelemetryFlags:
    def test_verbose_flag_counts(self):
        args = build_parser().parse_args(["-vv", "threshold"])
        assert args.verbose == 2
        assert build_parser().parse_args(["threshold"]).verbose == 0

    def test_verbose_logs_side_paths(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["-v", "threshold", "--csv", str(tmp_path)]) == 0
        assert any("series written to" in r.message for r in caplog.records)

    def test_side_paths_not_printed_to_stdout(self, tmp_path, capsys):
        assert main(["threshold", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "series written to" not in out
        assert "FIG. 5" in out  # result table still on stdout

    def test_profile_prints_table(self, capsys):
        assert main(["--profile", "threshold"]) == 0
        out = capsys.readouterr().out
        assert "RUN PROFILE" in out
        assert "threshold" in out

    def test_telemetry_writes_manifest(self, tmp_path):
        import json

        from repro import obs

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "--telemetry", str(manifest_path),
                "sweep",
                "--sizes", "6",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "5",
            ]
        )
        assert code == 0
        assert not obs.enabled()  # flag restored after the run
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "sweep"
        assert "sweep/serve" in manifest["profile"]
        assert "sweep/propagate" in manifest["profile"]
        fidelity = manifest["metrics"]["network.fidelity"]
        assert fidelity["count"] > 0
        # Exact-mean contract: the histogram mean reproduces the printed
        # full-size fidelity.
        assert fidelity["mean"] == pytest.approx(fidelity["sum"] / fidelity["count"])

    def test_repeated_main_calls_keep_one_cli_handler(self):
        import logging

        assert main(["threshold"]) == 0
        assert main(["-v", "threshold"]) == 0
        logger = logging.getLogger("repro")
        cli_handlers = [h for h in logger.handlers if getattr(h, "_repro_cli", False)]
        assert len(cli_handlers) == 1  # regression: handlers used to stack
        assert logger.level == logging.INFO  # last call's -v took effect

    def test_telemetry_records_worker_reports(self, tmp_path):
        import json

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "--telemetry", str(manifest_path),
                "sweep",
                "--sizes", "6",
                "--step", "600",
                "--requests", "5",
                "--time-steps", "4",
                "--workers", "2",
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["workers"]) == 2
        for report in manifest["workers"]:
            assert report["n_steps"] > 0
            assert report["timings_s"]["total"] >= 0.0


class TestTraceFlag:
    _SWEEP = [
        "sweep",
        "--sizes", "6",
        "--step", "600",
        "--requests", "4",
        "--time-steps", "4",
    ]

    def test_trace_writes_jsonl_and_embeds_in_manifest(self, tmp_path):
        import json

        from repro.obs import trace
        from repro.obs.trace import CAUSES

        trace_path = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "run.json"
        code = main(
            ["--telemetry", str(manifest_path), "--trace", str(trace_path)] + self._SWEEP
        )
        assert code == 0
        assert trace.active() is None  # recorder stopped after the run
        records = list(trace.read_trace(trace_path))
        requests = [r for r in records if r["kind"] == "request"]
        coverage = [r for r in records if r["kind"] == "coverage"]
        assert len(requests) == 16  # 4 requests x 4 steps
        assert len(coverage) == 144  # full day at 600 s cadence
        for r in requests:
            assert r["served"] or r["cause"] in CAUSES
        summary = json.loads(manifest_path.read_text())["trace"]
        assert summary["requests"]["total"] == 16
        served = sum(1 for r in requests if r["served"])
        assert summary["requests"]["served"] == served
        assert summary["requests"]["denied"] == 16 - served

    def test_trace_sample_rate_thins_requests_not_coverage(self, tmp_path):
        from repro.obs import trace

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["--trace", str(trace_path), "--trace-sample-rate", "0.0"] + self._SWEEP
        )
        assert code == 0
        records = list(trace.read_trace(trace_path))
        assert all(r["kind"] == "coverage" for r in records)
        assert records  # the outage timeline still needs the full mask


class TestObsDiffCommand:
    def _write(self, path, served, denied):
        import json

        path.write_text(
            json.dumps(
                {
                    "command": "sweep",
                    "metrics": {
                        "network.requests.served": {"type": "counter", "value": served},
                        "network.requests.denied": {"type": "counter", "value": denied},
                    },
                }
            )
        )

    def test_informational_diff_exits_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 40, 60)
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "RUN DIFF" in capsys.readouterr().out

    def test_threshold_breach_exits_one(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 40, 60)
        assert main(["obs", "diff", str(a), str(b), "--max-served-delta", "5"]) == 1
        assert "threshold breached" in capsys.readouterr().err

    def test_within_threshold_exits_zero(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 59, 41)
        assert main(["obs", "diff", str(a), str(b), "--max-served-delta", "5"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._write(a, 60, 40)
        assert main(["obs", "diff", str(a), str(tmp_path / "nope.json")]) == 2
        assert "repro obs diff:" in capsys.readouterr().err

    def test_accepts_bench_trajectory_files(self, tmp_path, capsys):
        import json

        entry = {"bench": "x", "git_sha": "s1", "timings_s": {"warm": 1.0}}
        a, b = tmp_path / "ta.json", tmp_path / "tb.json"
        a.write_text(json.dumps({"bench": "x", "schema": 1, "trajectory": [entry]}))
        newer = dict(entry, git_sha="s2", timings_s={"warm": 1.3})
        b.write_text(json.dumps({"bench": "x", "schema": 1, "trajectory": [entry, newer]}))
        code = main(
            ["obs", "diff", str(a), str(b), "--max-timing-delta-pct", "10"]
        )
        assert code == 1  # +30 % warm timing breaches the 10 % gate


class TestFlagValidation:
    """--trace-sample-rate / --fault-seed reject garbage at the parser."""

    def _parse(self, *flags):
        return build_parser().parse_args([*flags, "threshold"])

    def test_trace_sample_rate_rejects_nan(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--trace-sample-rate", "nan")
        assert exc.value.code == 2
        assert "got NaN" in capsys.readouterr().err

    def test_trace_sample_rate_rejects_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--trace-sample-rate=-0.5")
        assert exc.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_trace_sample_rate_rejects_above_one(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--trace-sample-rate", "1.5")
        assert exc.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_trace_sample_rate_rejects_non_numeric(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--trace-sample-rate", "often")
        assert exc.value.code == 2
        assert "invalid float value" in capsys.readouterr().err

    def test_trace_sample_rate_accepts_bounds(self):
        assert self._parse("--trace-sample-rate", "0.0").trace_sample_rate == 0.0
        assert self._parse("--trace-sample-rate", "1.0").trace_sample_rate == 1.0
        assert self._parse("--trace-sample-rate", "0.25").trace_sample_rate == 0.25

    def test_fault_seed_rejects_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--fault-seed=-3")
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_fault_seed_rejects_non_integer(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self._parse("--fault-seed", "abc")
        assert exc.value.code == 2
        assert "invalid integer value" in capsys.readouterr().err

    def test_fault_seed_accepts_zero(self):
        assert self._parse("--fault-seed", "0").fault_seed == 0
        assert self._parse("--fault-seed", "17").fault_seed == 17


class TestFaultsFlag:
    _SWEEP = [
        "sweep",
        "--sizes", "12",
        "--step", "600",
        "--requests", "4",
        "--time-steps", "4",
    ]

    def _schedule_file(self, tmp_path):
        import json

        path = tmp_path / "faults.json"
        path.write_text(
            json.dumps(
                {
                    "events": [
                        {"kind": "satellite_outage", "start_s": 0.0,
                         "end_s": 86400.0, "satellite": "sat-000"},
                        {"kind": "weather_fade", "start_s": 0.0, "end_s": 43200.0,
                         "site": "ttu-0", "extra_db": 3.0},
                    ]
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_faults_run_records_schedule_in_manifest(self, tmp_path):
        import json

        from repro.faults import load_faults

        faults_path = self._schedule_file(tmp_path)
        manifest_path = tmp_path / "run.json"
        code = main(
            ["--telemetry", str(manifest_path), "--faults", str(faults_path),
             "--fault-seed", "11"] + self._SWEEP
        )
        assert code == 0
        extra = json.loads(manifest_path.read_text())["extra"]["faults"]
        assert extra["source"] == str(faults_path)
        assert extra["seed"] == 11
        assert extra["events"] == 2
        assert extra["schedule_hash"] == load_faults(faults_path).schedule_hash()

    def test_bad_faults_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken", encoding="utf-8")
        assert main(["--faults", str(bad)] + self._SWEEP) == 2
        assert "--faults" in capsys.readouterr().err

    def test_missing_faults_file_exits_two(self, tmp_path, capsys):
        assert main(["--faults", str(tmp_path / "nope.json")] + self._SWEEP) == 2
        assert "cannot read" in capsys.readouterr().err


class TestObsDiffJsonFormat:
    def _write(self, path, served, denied):
        import json

        path.write_text(
            json.dumps(
                {
                    "command": "sweep",
                    "metrics": {
                        "network.requests.served": {"type": "counter", "value": served},
                        "network.requests.denied": {"type": "counter", "value": denied},
                    },
                }
            )
        )

    def test_json_document_with_breach(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 40, 60)
        code = main(
            ["obs", "diff", str(a), str(b), "--format", "json", "--max-served-delta", "5"]
        )
        assert code == 1
        out, err = capsys.readouterr()
        # Strict JSON: no NaN literals allowed in the document.
        doc = json.loads(out, parse_constant=lambda _: pytest.fail("non-strict JSON"))
        assert doc["ok"] is False
        assert doc["n_breached"] == 1
        rows = {r["metric"]: r for r in doc["rows"]}
        assert rows["served_pct"]["breached"] is True
        assert rows["served_pct"]["delta"] == pytest.approx(-20.0)
        assert rows["mean_fidelity"]["delta"] is None  # absent -> null, not NaN
        assert "threshold breached" in err

    def test_json_document_clean(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 60, 40)
        assert main(["obs", "diff", str(a), str(b), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["n_breached"] == 0

    def test_table_remains_default(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 60, 40)
        self._write(b, 60, 40)
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "RUN DIFF" in capsys.readouterr().out


class TestServeLiveFlags:
    _SERVE = [
        "serve",
        "--satellites",
        "12",
        "--duration",
        "60",
        "--rate",
        "2",
        "--step",
        "60",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.http_port is None
        assert args.http_host == "127.0.0.1"
        assert args.hold == 0.0
        assert args.slo is None
        assert args.slo_snapshots is None
        assert args.slo_interval == 1.0

    def test_slo_snapshots_and_manifest(self, tmp_path):
        import json

        manifest_path = tmp_path / "m.json"
        snap_path = tmp_path / "snap.jsonl"
        code = main(
            ["--telemetry", str(manifest_path)]
            + self._SERVE
            + ["--slo-snapshots", str(snap_path), "--slo-interval", "0.05"]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        slo = manifest["extra"]["slo"]
        assert slo["spec"]["served_fraction_target"] == 0.95
        assert "availability" in slo["final_states"]
        assert slo["snapshots"]  # the final flush always records a point
        # Timestamp satellite: ISO-8601 UTC bounds plus duration.
        assert manifest["started_at"].endswith("Z")
        assert manifest["finished_at"] >= manifest["started_at"]
        assert manifest["duration_s"] > 0
        # The JSONL stream parses line by line and matches the manifest tail.
        lines = [
            json.loads(line) for line in snap_path.read_text().splitlines() if line
        ]
        assert lines
        assert lines[-1]["objectives"].keys() == {"availability"}

    def test_custom_slo_spec_lands_in_manifest(self, tmp_path):
        import json

        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                {"served_fraction_target": 0.5, "queue_full_budget": 0.25}
            )
        )
        manifest_path = tmp_path / "m.json"
        code = main(
            ["--telemetry", str(manifest_path)]
            + self._SERVE
            + ["--slo", str(spec_path)]
        )
        assert code == 0
        slo = json.loads(manifest_path.read_text())["extra"]["slo"]
        assert slo["spec"]["served_fraction_target"] == 0.5
        assert set(slo["final_states"]) == {"availability", "saturation"}

    def test_bad_slo_spec_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(self._SERVE + ["--slo", str(bad)]) == 2
        assert "repro serve: --slo" in capsys.readouterr().err

    def test_serve_without_live_flags_unchanged(self, capsys):
        assert main(self._SERVE) == 0
        assert "STREAMING SERVICE" in capsys.readouterr().out


class TestTopCommand:
    def test_parser_appends_status_path(self):
        args = build_parser().parse_args(["top", "http://h:1"])
        assert args.url == "http://h:1"
        assert args.interval == 2.0
        assert args.iterations == 0

    def test_unreachable_service_exits_one(self, capsys):
        code = main(
            ["top", "http://127.0.0.1:1", "--iterations", "1", "--interval", "0.01"]
        )
        assert code == 1
        assert "repro top:" in capsys.readouterr().err

    def test_rejects_negative_iterations(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top", "http://h:1", "--iterations", "-1"])


class TestServeLivePlaneWithoutTelemetry:
    def test_http_port_forces_live_plane_and_restores(self, capsys):
        from repro.obs import live

        code = main(
            TestServeLiveFlags._SERVE + ["--http-port", "0", "--hold", "0"]
        )
        assert code == 0
        assert not live.forced()  # restored after the run
        err = capsys.readouterr().err
        assert "observability endpoints: http://127.0.0.1:" in err


class TestTimelineFlag:
    _SERVE = TestServeLiveFlags._SERVE + ["--seed", "3"]

    def test_timeline_writes_events_and_embeds_summary(self, tmp_path):
        import json

        from repro.obs import events

        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        code = main(
            ["--telemetry", str(manifest_path), "--timeline", str(events_path)]
            + self._SERVE
        )
        assert code == 0
        assert events.active() is None  # recorder stopped after the run
        records = list(events.read_events(events_path))
        roots = [r for r in records if "trace" in r and r.get("parent") is None]
        assert roots
        assert all(r["trace"].startswith("req-") for r in roots)
        for root in roots:
            assert "served" in root["attrs"] and "tenant" in root["attrs"]
        summary = json.loads(manifest_path.read_text())["events"]
        assert summary["traces"] == len(roots)
        assert summary["events"] == len(records)
        assert summary["slowest"]

    def test_timeline_sample_rate_zero_records_nothing(self, tmp_path):
        from repro.obs import events

        events_path = tmp_path / "events.jsonl"
        code = main(
            ["--timeline", str(events_path), "--timeline-sample-rate", "0.0"]
            + self._SERVE
        )
        assert code == 0
        assert all(
            "trace" not in r for r in events.read_events(events_path)
        )  # process-scope only — every trace sampled out

    def test_back_to_back_runs_never_leak_events(self, tmp_path):
        from repro.obs import events

        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        assert main(["--timeline", str(first)] + self._SERVE) == 0
        assert main(["--timeline", str(second)] + self._SERVE) == 0
        assert events.active() is None
        a = sorted(r["trace"] for r in events.read_events(first) if "trace" in r)
        b = sorted(r["trace"] for r in events.read_events(second) if "trace" in r)
        assert a == b  # identical streams: same traces, nothing carried over

    def test_run_without_timeline_keeps_recorder_off(self, tmp_path):
        from repro.obs import events

        events_path = tmp_path / "events.jsonl"
        assert main(["--timeline", str(events_path)] + self._SERVE) == 0
        assert main(self._SERVE) == 0  # plain rerun
        assert events.active() is None


class TestTraceCommand:
    def _record_run(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(
            ["--timeline", str(events_path)] + TestTimelineFlag._SERVE
        )
        assert code == 0
        capsys.readouterr()  # drop the serve run's own output
        return events_path

    def test_perfetto_export_is_valid_trace_event_json(self, tmp_path, capsys):
        import json

        events_path = self._record_run(tmp_path, capsys)
        assert main(["trace", str(events_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["producer"] == "repro.obs.events"
        span_events = [e for e in doc["traceEvents"] if e["cat"] == "span"]
        assert span_events
        for e in span_events:
            assert {"ph", "name", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in ("B", "E")

    def test_output_flag_writes_file(self, tmp_path, capsys):
        import json

        events_path = self._record_run(tmp_path, capsys)
        out = tmp_path / "trace.json"
        code = main(
            ["trace", str(events_path), "--format", "perfetto", "--output", str(out)]
        )
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_tree_format_renders_waterfall(self, tmp_path, capsys):
        events_path = self._record_run(tmp_path, capsys)
        assert main(["trace", str(events_path), "--format", "tree"]) == 0
        out = capsys.readouterr().out
        assert "req-" in out and "ms" in out

    def test_json_format_roundtrips_records(self, tmp_path, capsys):
        import json

        from repro.obs import events

        events_path = self._record_run(tmp_path, capsys)
        assert main(["trace", str(events_path), "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed == list(events.read_events(events_path))

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro trace:" in capsys.readouterr().err


class TestReportJsonFormat:
    def test_json_format_emits_summary(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "run.json"
        events_path = tmp_path / "events.jsonl"
        code = main(
            ["--telemetry", str(manifest_path), "--timeline", str(events_path)]
            + TestTimelineFlag._SERVE
        )
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(manifest_path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["command"] == "serve"
        assert summary["events"]["traces"] > 0
        assert summary["events"]["slowest"]
