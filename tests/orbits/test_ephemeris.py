"""Tests for movement sheets (generation, lookup, CSV round trip)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet, movement_sheet_times
from repro.orbits.walker import qntn_constellation


class TestMovementSheetTimes:
    def test_paper_defaults_2880_samples(self):
        times = movement_sheet_times()
        assert times.size == 2880
        assert times[0] == 0.0
        assert times[1] - times[0] == 30.0

    def test_custom_grid(self):
        times = movement_sheet_times(100.0, 30.0)
        np.testing.assert_allclose(times, [0.0, 30.0, 60.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            movement_sheet_times(0.0, 30.0)
        with pytest.raises(ValidationError):
            movement_sheet_times(100.0, -1.0)


class TestGenerateMovementSheet:
    def test_shapes_and_default_names(self, small_ephemeris):
        assert small_ephemeris.positions_ecef_km.shape == (12, 120, 3)
        assert small_ephemeris.names[0] == "sat-000"

    def test_altitudes_near_500km(self, small_ephemeris):
        _, _, alt = small_ephemeris.geodetic_tracks()
        assert 480.0 < alt.min() and alt.max() < 520.0

    def test_custom_names(self):
        eph = generate_movement_sheet(
            qntn_constellation(2), duration_s=120.0, step_s=60.0, names=["a", "b"]
        )
        assert eph.names == ["a", "b"]

    def test_earth_rotation_moves_ecef_track(self):
        """Over half a day an equator-crossing track must drift in longitude."""
        eph = generate_movement_sheet(qntn_constellation(1), duration_s=43200.0, step_s=3600.0)
        lat, lon, _ = eph.geodetic_tracks()
        assert np.ptp(lon) > 0.5


class TestEphemerisLookups:
    def test_sample_index_holds_previous(self, small_ephemeris):
        assert small_ephemeris.sample_index(59.9) == 0
        assert small_ephemeris.sample_index(60.0) == 1

    def test_sample_index_clamps(self, small_ephemeris):
        assert small_ephemeris.sample_index(-5.0) == 0
        assert small_ephemeris.sample_index(1e9) == small_ephemeris.n_samples - 1

    def test_position_at_by_name(self, small_ephemeris):
        p = small_ephemeris.position_at("sat-003", 0.0)
        np.testing.assert_allclose(p, small_ephemeris.positions_ecef_km[3, 0])

    def test_position_interpolation_midpoint(self, small_ephemeris):
        p0 = small_ephemeris.positions_ecef_km[0, 0]
        p1 = small_ephemeris.positions_ecef_km[0, 1]
        mid = small_ephemeris.position_at(0, 30.0, interpolate=True)
        np.testing.assert_allclose(mid, (p0 + p1) / 2)

    def test_unknown_name_rejected(self, small_ephemeris):
        with pytest.raises(ValidationError):
            small_ephemeris.index_of("nope")

    def test_subset(self, small_ephemeris):
        sub = small_ephemeris.subset([2, 5])
        assert sub.n_platforms == 2
        assert sub.names == ["sat-002", "sat-005"]
        np.testing.assert_allclose(
            sub.positions_ecef_km[1], small_ephemeris.positions_ecef_km[5]
        )


class TestEphemerisValidation:
    def test_rejects_time_mismatch(self):
        with pytest.raises(ValidationError):
            Ephemeris(np.arange(3.0), np.zeros((1, 4, 3)))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValidationError):
            Ephemeris(np.array([1.0, 0.0]), np.zeros((1, 2, 3)))

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValidationError):
            Ephemeris(np.arange(2.0), np.zeros((2, 2, 3)), names=["only-one"])

    def test_rejects_bad_position_rank(self):
        with pytest.raises(ValidationError):
            Ephemeris(np.arange(2.0), np.zeros((2, 2)))


class TestMovementSheetCsv:
    def test_roundtrip_string(self):
        eph = generate_movement_sheet(qntn_constellation(2), duration_s=90.0, step_s=30.0)
        text = eph.to_csv_string()
        back = Ephemeris.from_csv_string(text)
        assert back.names == eph.names
        np.testing.assert_array_equal(back.times_s, eph.times_s)
        np.testing.assert_array_equal(back.positions_ecef_km, eph.positions_ecef_km)

    def test_roundtrip_file(self, tmp_path):
        eph = generate_movement_sheet(qntn_constellation(1), duration_s=90.0, step_s=30.0)
        path = tmp_path / "sheet.csv"
        eph.to_csv(path)
        back = Ephemeris.from_csv(path)
        np.testing.assert_array_equal(back.positions_ecef_km, eph.positions_ecef_km)

    def test_roundtrip_bit_exact_on_day_grid(self, small_ephemeris):
        """Repr round-trip must preserve every position bit-for-bit —
        cache shards serialized through CSV must rebuild identical link
        budgets."""
        back = Ephemeris.from_csv_string(small_ephemeris.to_csv_string())
        assert back.names == small_ephemeris.names
        np.testing.assert_array_equal(back.times_s, small_ephemeris.times_s)
        np.testing.assert_array_equal(
            back.positions_ecef_km, small_ephemeris.positions_ecef_km
        )

    def test_roundtrip_preserves_time_shard(self, small_ephemeris):
        """A worker's `at_time_indices` shard survives the CSV round trip."""
        shard = small_ephemeris.at_time_indices([0, 5, 17, 99])
        back = Ephemeris.from_csv_string(shard.to_csv_string())
        np.testing.assert_array_equal(back.times_s, shard.times_s)
        np.testing.assert_array_equal(back.positions_ecef_km, shard.positions_ecef_km)

    def test_roundtrip_is_idempotent(self):
        eph = generate_movement_sheet(qntn_constellation(3), duration_s=300.0, step_s=60.0)
        once = Ephemeris.from_csv_string(eph.to_csv_string())
        twice = Ephemeris.from_csv_string(once.to_csv_string())
        assert once.to_csv_string() == twice.to_csv_string()

    def test_bad_header_rejected(self):
        with pytest.raises(ValidationError):
            Ephemeris.from_csv_string("a,b,c\n1,2,3\n")

    def test_empty_sheet_rejected(self):
        with pytest.raises(ValidationError):
            Ephemeris.from_csv_string("name,time_s,x_km,y_km,z_km\n")
