"""Unit tests for the two-body propagator."""

import numpy as np
import pytest

from repro.constants import QNTN_SEMI_MAJOR_AXIS_KM
from repro.errors import ValidationError
from repro.orbits.elements import ElementSet, OrbitalElements, orbital_period
from repro.orbits.propagator import TwoBodyPropagator


def _single(a=QNTN_SEMI_MAJOR_AXIS_KM, e=0.0, inc=0.9, raan=0.3, argp=0.0, nu=0.1):
    return ElementSet.from_elements([OrbitalElements(a, e, inc, raan, argp, nu)])


class TestTwoBodyPropagator:
    def test_radius_constant_for_circular_orbit(self):
        prop = TwoBodyPropagator(_single())
        times = np.linspace(0, 6000, 50)
        r = prop.positions_eci(times)
        radii = np.linalg.norm(r, axis=-1)
        np.testing.assert_allclose(radii, QNTN_SEMI_MAJOR_AXIS_KM, rtol=1e-10)

    def test_periodicity(self):
        prop = TwoBodyPropagator(_single())
        period = orbital_period(QNTN_SEMI_MAJOR_AXIS_KM)
        r = prop.positions_eci(np.array([0.0, period]))
        np.testing.assert_allclose(r[0, 0], r[0, 1], atol=1e-6)

    def test_half_period_opposite_position(self):
        prop = TwoBodyPropagator(_single())
        period = orbital_period(QNTN_SEMI_MAJOR_AXIS_KM)
        r = prop.positions_eci(np.array([0.0, period / 2]))
        np.testing.assert_allclose(r[0, 0], -r[0, 1], atol=1e-6)

    def test_inclination_bounds_z(self):
        inc = np.radians(53.0)
        prop = TwoBodyPropagator(_single(inc=inc))
        r = prop.positions_eci(np.linspace(0, 6000, 200))
        max_z = np.abs(r[..., 2]).max()
        assert max_z <= QNTN_SEMI_MAJOR_AXIS_KM * np.sin(inc) * (1 + 1e-9)
        assert max_z == pytest.approx(QNTN_SEMI_MAJOR_AXIS_KM * np.sin(inc), rel=1e-3)

    def test_eccentric_orbit_radius_range(self):
        prop = TwoBodyPropagator(_single(a=8000.0, e=0.1))
        r = prop.positions_eci(np.linspace(0, 2 * orbital_period(8000.0), 400))
        radii = np.linalg.norm(r, axis=-1)
        assert radii.min() == pytest.approx(8000.0 * 0.9, rel=1e-4)
        assert radii.max() == pytest.approx(8000.0 * 1.1, rel=1e-4)

    def test_shape_multisat(self):
        es = ElementSet.from_elements(
            [OrbitalElements(7000.0, 0.0, 0.9, r, 0.0, 0.0) for r in (0.0, 1.0, 2.0)]
        )
        prop = TwoBodyPropagator(es)
        assert prop.positions_eci(np.linspace(0, 100, 7)).shape == (3, 7, 3)

    def test_rejects_empty_set(self):
        with pytest.raises(ValidationError):
            TwoBodyPropagator(
                ElementSet(
                    np.array([]), np.array([]), np.array([]),
                    np.array([]), np.array([]), np.array([]),
                )
            )

    def test_rejects_2d_times(self):
        prop = TwoBodyPropagator(_single())
        with pytest.raises(ValidationError):
            prop.positions_eci(np.zeros((2, 2)))

    def test_scalar_reference_matches_vectorized(self):
        es = ElementSet.from_elements(
            [
                OrbitalElements(7000.0, 0.05, 0.9, 0.3, 0.4, 0.5),
                OrbitalElements(6900.0, 0.0, 1.1, 2.0, 0.0, 1.0),
            ]
        )
        prop = TwoBodyPropagator(es)
        times = np.linspace(0, 3000, 5)
        np.testing.assert_allclose(
            prop.positions_eci(times), prop.positions_eci_scalar(times), atol=1e-6
        )


class TestJ2:
    def test_j2_polar_orbit_has_no_raan_drift(self):
        es = _single(inc=np.pi / 2)
        prop = TwoBodyPropagator(es, include_j2=True)
        assert prop._j2 is not None
        assert prop._j2.raan_dot[0] == pytest.approx(0.0, abs=1e-15)

    def test_j2_prograde_orbit_regresses_westward(self):
        prop = TwoBodyPropagator(_single(inc=np.radians(53.0)), include_j2=True)
        assert prop._j2.raan_dot[0] < 0.0

    def test_j2_retrograde_orbit_advances(self):
        prop = TwoBodyPropagator(_single(inc=np.radians(120.0)), include_j2=True)
        assert prop._j2.raan_dot[0] > 0.0

    def test_j2_drift_magnitude_leo(self):
        """At 500 km / 53 deg the nodal regression is a few degrees/day."""
        prop = TwoBodyPropagator(_single(inc=np.radians(53.0)), include_j2=True)
        deg_per_day = np.degrees(prop._j2.raan_dot[0]) * 86400
        assert -6.0 < deg_per_day < -3.0

    def test_j2_changes_positions(self):
        times = np.array([43200.0])
        base = TwoBodyPropagator(_single()).positions_eci(times)
        j2 = TwoBodyPropagator(_single(), include_j2=True).positions_eci(times)
        assert np.linalg.norm(base - j2) > 1.0  # km-scale displacement after 12 h
