"""Tests for visibility geometry and access windows."""

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM, QNTN_MIN_ELEVATION_RAD
from repro.errors import ValidationError
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.visibility import (
    AccessWindow,
    access_windows,
    elevation_and_range,
    elevation_and_range_scalar,
    ground_coverage_radius_km,
    visibility_mask,
)

SITE = (math.radians(36.1757), math.radians(-85.5066), 0.3)


class TestElevationAndRange:
    def test_overhead_platform(self):
        overhead = geodetic_to_ecef(SITE[0], SITE[1], SITE[2] + 500.0)
        az, el, rng = elevation_and_range(*SITE, overhead[None, :])
        assert float(el[0]) == pytest.approx(math.pi / 2, abs=1e-6)
        assert float(rng[0]) == pytest.approx(500.0, rel=1e-6)

    def test_antipode_below_horizon(self):
        antipode = geodetic_to_ecef(-SITE[0], SITE[1] + math.pi, 500.0)
        _, el, _ = elevation_and_range(*SITE, antipode[None, :])
        assert float(el[0]) < 0.0

    def test_matches_scalar_reference(self, small_ephemeris):
        pos = small_ephemeris.positions_ecef_km[:, :40, :]
        az_v, el_v, rng_v = elevation_and_range(*SITE, pos)
        az_s, el_s, rng_s = elevation_and_range_scalar(*SITE, pos)
        np.testing.assert_allclose(az_v, az_s, atol=1e-10)
        np.testing.assert_allclose(el_v, el_s, atol=1e-10)
        np.testing.assert_allclose(rng_v, rng_s, atol=1e-8)

    def test_range_bounds_for_leo(self, small_ephemeris):
        _, el, rng = elevation_and_range(*SITE, small_ephemeris.positions_ecef_km)
        visible = el > QNTN_MIN_ELEVATION_RAD
        if np.any(visible):
            assert rng[visible].min() > 480.0
            assert rng[visible].max() < 1300.0


class TestVisibilityMask:
    def test_threshold(self):
        el = np.array([0.1, 0.5, 0.34])
        mask = visibility_mask(el, 0.35)
        assert mask.tolist() == [False, True, False]

    def test_rejects_nan_threshold(self):
        with pytest.raises(ValidationError):
            visibility_mask(np.array([0.1]), float("nan"))


class TestAccessWindows:
    def test_single_pass(self):
        times = np.arange(10, dtype=float)
        el = np.array([-1, -0.5, 0.1, 0.4, 0.6, 0.5, 0.2, -0.1, -0.5, -1.0])
        windows = access_windows(times, el, 0.0)
        assert len(windows) == 1
        w = windows[0]
        assert w.start_s == 2.0
        assert w.end_s == 7.0
        assert w.peak_elevation_rad == pytest.approx(0.6)
        assert w.duration_s == pytest.approx(5.0)

    def test_no_pass(self):
        times = np.arange(5, dtype=float)
        assert access_windows(times, np.full(5, -0.1), 0.0) == []

    def test_two_passes(self):
        times = np.arange(8, dtype=float)
        el = np.array([0.5, -0.1, -0.2, 0.3, 0.4, -0.3, 0.2, 0.1])
        windows = access_windows(times, el, 0.0)
        assert len(windows) == 3
        assert [w.start_s for w in windows] == [0.0, 3.0, 6.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            access_windows(np.arange(3, dtype=float), np.zeros(4), 0.0)

    def test_window_dataclass(self):
        w = AccessWindow(10.0, 40.0, 0.9)
        assert w.duration_s == 30.0


class TestGroundCoverageRadius:
    def test_zero_elevation_maximal(self):
        r0 = ground_coverage_radius_km(500.0, 0.0)
        r20 = ground_coverage_radius_km(500.0, math.radians(20.0))
        assert r0 > r20 > 0

    def test_known_value_500km_20deg(self):
        """Footprint radius ~1040 km for 500 km altitude at 20 deg."""
        r = ground_coverage_radius_km(500.0, math.radians(20.0))
        assert r == pytest.approx(1040.0, rel=0.02)

    def test_higher_platform_larger_footprint(self):
        assert ground_coverage_radius_km(1000.0, 0.3) > ground_coverage_radius_km(500.0, 0.3)

    def test_rejects_bad_altitude(self):
        with pytest.raises(ValidationError):
            ground_coverage_radius_km(0.0, 0.3)

    def test_rejects_bad_elevation(self):
        with pytest.raises(ValidationError):
            ground_coverage_radius_km(500.0, math.pi / 2)
