"""Tests for ground tracks and coverage maps."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.orbits.groundtrack import (
    CoverageGrid,
    coverage_grid,
    ground_track,
    render_ascii_map,
)


class TestGroundTrack:
    def test_latitudes_bounded_by_inclination(self, small_ephemeris):
        lat, lon = ground_track(small_ephemeris, 0)
        assert np.abs(lat).max() <= 53.5  # inclination + ellipsoid wiggle

    def test_longitudes_normalised(self, small_ephemeris):
        _, lon = ground_track(small_ephemeris, 0)
        assert lon.min() > -180.0 - 1e-9
        assert lon.max() <= 180.0 + 1e-9

    def test_by_name(self, small_ephemeris):
        lat_i, _ = ground_track(small_ephemeris, 3)
        lat_n, _ = ground_track(small_ephemeris, "sat-003")
        np.testing.assert_array_equal(lat_i, lat_n)

    def test_track_moves(self, small_ephemeris):
        lat, lon = ground_track(small_ephemeris, 0)
        assert np.ptp(lat) > 1.0


class TestCoverageGrid:
    @pytest.fixture(scope="class")
    def grid(self, day_ephemeris_36):
        return coverage_grid(
            day_ephemeris_36,
            lat_range_deg=(35.0, 36.5),
            lon_range_deg=(-86.0, -84.0),
            resolution_deg=0.5,
        )

    def test_shape(self, grid):
        assert grid.fraction.shape == (grid.lats_deg.size, grid.lons_deg.size)

    def test_fractions_in_unit_interval(self, grid):
        assert grid.fraction.min() >= 0.0
        assert grid.fraction.max() <= 1.0

    def test_region_sees_some_coverage(self, grid):
        """36 satellites at 53 deg inclination cover Tennessee part-time."""
        assert 0.05 < grid.fraction.mean() < 0.95

    def test_at_lookup(self, grid):
        value = grid.at(35.5, -85.0)
        i = int(np.argmin(np.abs(grid.lats_deg - 35.5)))
        j = int(np.argmin(np.abs(grid.lons_deg - (-85.0))))
        assert value == grid.fraction[i, j]

    def test_rejects_bad_grid(self, small_ephemeris):
        with pytest.raises(ValidationError):
            coverage_grid(small_ephemeris, lat_range_deg=(36.0, 35.0))


class TestAsciiMap:
    def test_renders_rows_north_up(self):
        grid = CoverageGrid(
            np.array([35.0, 36.0]),
            np.array([-86.0, -85.0, -84.0]),
            np.array([[0.0, 0.5, 1.0], [1.0, 0.5, 0.0]]),
        )
        out = render_ascii_map(grid)
        lines = out.splitlines()
        assert len(lines) == 3  # two rows + legend
        assert lines[0][0] == "@"  # north-west cell has fraction 1.0
        assert lines[1][2] == "@"  # south-east cell has fraction 1.0
        assert "lat 35.0..36.0" in lines[-1]

    def test_markers_overlay(self):
        grid = CoverageGrid(
            np.array([35.0, 36.0]),
            np.array([-86.0, -85.0]),
            np.zeros((2, 2)),
        )
        out = render_ascii_map(grid, markers={"T": (36.0, -86.0)})
        assert out.splitlines()[0][0] == "T"
