"""Unit tests for orbital-element containers."""

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM, QNTN_SEMI_MAJOR_AXIS_KM
from repro.errors import ValidationError
from repro.orbits.elements import ElementSet, OrbitalElements, mean_motion, orbital_period


class TestMeanMotionAndPeriod:
    def test_leo_period_about_95_minutes(self):
        period = orbital_period(QNTN_SEMI_MAJOR_AXIS_KM)
        assert 5400 < period < 5800  # ~94.6 min at 500 km

    def test_kepler_third_law_scaling(self):
        """Doubling the semi-major axis scales the period by 2^1.5."""
        p1 = orbital_period(7000.0)
        p2 = orbital_period(14000.0)
        assert p2 / p1 == pytest.approx(2**1.5, rel=1e-12)

    def test_mean_motion_inverse_of_period(self):
        a = 6871.0
        assert mean_motion(a) * orbital_period(a) == pytest.approx(2 * math.pi)

    def test_rejects_nonpositive_axis(self):
        with pytest.raises(ValidationError):
            mean_motion(0.0)


class TestOrbitalElements:
    def test_altitude(self):
        el = OrbitalElements(6871.0, 0.0, 0.9, 0.0, 0.0, 0.0)
        assert el.altitude_km == pytest.approx(6871.0 - EARTH_RADIUS_KM)

    def test_with_true_anomaly(self):
        el = OrbitalElements(6871.0, 0.0, 0.9, 0.1, 0.2, 0.0)
        el2 = el.with_true_anomaly(1.5)
        assert el2.true_anomaly_rad == 1.5
        assert el2.raan_rad == el.raan_rad

    def test_rejects_hyperbolic(self):
        with pytest.raises(ValidationError):
            OrbitalElements(6871.0, 1.0, 0.9, 0.0, 0.0, 0.0)

    def test_rejects_bad_inclination(self):
        with pytest.raises(ValidationError):
            OrbitalElements(6871.0, 0.0, 4.0, 0.0, 0.0, 0.0)


class TestElementSet:
    def _build(self, n=3):
        return ElementSet(
            np.full(n, 6871.0),
            np.zeros(n),
            np.full(n, 0.9),
            np.linspace(0, 1, n),
            np.zeros(n),
            np.linspace(0, 2, n),
        )

    def test_len_and_getitem(self):
        es = self._build(3)
        assert len(es) == 3
        assert isinstance(es[1], OrbitalElements)
        assert es[1].raan_rad == pytest.approx(0.5)

    def test_iteration_yields_scalars(self):
        assert all(isinstance(el, OrbitalElements) for el in self._build())

    def test_roundtrip_from_elements(self):
        es = self._build(4)
        rebuilt = ElementSet.from_elements(list(es))
        np.testing.assert_allclose(rebuilt.raan, es.raan)
        np.testing.assert_allclose(rebuilt.nu, es.nu)

    def test_subset(self):
        es = self._build(5)
        sub = es.subset([0, 4])
        assert len(sub) == 2
        assert sub[1].raan_rad == pytest.approx(es[4].raan_rad)

    def test_mean_motion_shape(self):
        assert self._build(5).mean_motion_rad_s.shape == (5,)

    def test_rejects_ragged_fields(self):
        with pytest.raises(ValidationError):
            ElementSet(
                np.ones(2), np.zeros(3), np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2)
            )

    def test_rejects_bad_eccentricity(self):
        with pytest.raises(ValidationError):
            ElementSet(
                np.ones(2) * 7000,
                np.array([0.0, 1.2]),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
            )

    def test_rejects_nonfinite(self):
        with pytest.raises(ValidationError):
            ElementSet(
                np.array([7000.0, np.nan]),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
            )
