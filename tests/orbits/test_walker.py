"""Tests for constellation generators, cross-checked against Table II."""

import math

import numpy as np
import pytest

from repro.constants import QNTN_INCLINATION_RAD, QNTN_SEMI_MAJOR_AXIS_KM
from repro.data.constellation import TABLE_II_ROWS, table_ii_configurations
from repro.errors import ValidationError
from repro.orbits.walker import qntn_constellation, qntn_plane_order, walker_delta


class TestWalkerDelta:
    def test_counts(self):
        es = walker_delta(36, 6, 0)
        assert len(es) == 36

    def test_plane_spacing(self):
        es = walker_delta(36, 6, 0)
        raans = np.unique(np.round(np.degrees(es.raan), 9))
        np.testing.assert_allclose(raans, [0, 60, 120, 180, 240, 300])

    def test_in_plane_spacing(self):
        es = walker_delta(36, 6, 0)
        plane0 = np.degrees(es.nu[:6])
        np.testing.assert_allclose(sorted(plane0), [0, 60, 120, 180, 240, 300], atol=1e-9)

    def test_phasing_offsets_adjacent_planes(self):
        es = walker_delta(36, 6, 1)
        # First satellite of plane 1 is offset by F * 360 / T = 10 degrees.
        assert math.degrees(es.nu[6]) == pytest.approx(10.0)

    def test_rejects_nondivisible(self):
        with pytest.raises(ValidationError):
            walker_delta(35, 6, 0)

    def test_rejects_bad_phasing(self):
        with pytest.raises(ValidationError):
            walker_delta(36, 6, 6)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValidationError):
            walker_delta(0, 1, 0)


class TestQntnConstellation:
    def test_full_size(self):
        es = qntn_constellation(108)
        assert len(es) == 108

    def test_orbit_constants(self):
        es = qntn_constellation(12)
        np.testing.assert_allclose(es.a, QNTN_SEMI_MAJOR_AXIS_KM)
        np.testing.assert_allclose(es.e, 0.0)
        np.testing.assert_allclose(es.inc, QNTN_INCLINATION_RAD)

    def test_matches_table_ii_exactly(self):
        """The generator must reproduce Table II row for row."""
        es = qntn_constellation(108)
        got = [
            (round(math.degrees(r), 6) % 360, round(math.degrees(n), 6) % 360)
            for r, n in zip(es.raan, es.nu)
        ]
        assert got == [(r % 360, n % 360) for r, n in TABLE_II_ROWS]

    def test_first_six_satellites_spread_over_planes(self):
        """Small constellations spread one satellite per plane (column 1)."""
        es = qntn_constellation(6)
        np.testing.assert_allclose(
            np.degrees(es.raan), [0, 60, 120, 180, 240, 300], atol=1e-9
        )
        np.testing.assert_allclose(np.degrees(es.nu), 0.0, atol=1e-9)

    def test_prefix_property(self):
        """qntn_constellation(n) is a prefix of qntn_constellation(108)."""
        full = qntn_constellation(108)
        for n in (6, 18, 36, 42, 72):
            sub = qntn_constellation(n)
            np.testing.assert_allclose(sub.raan, full.raan[:n])
            np.testing.assert_allclose(sub.nu, full.nu[:n])

    def test_gap_planes_added_whole(self):
        es = qntn_constellation(42)
        np.testing.assert_allclose(np.degrees(es.raan[36:42]), 20.0)
        np.testing.assert_allclose(
            np.degrees(es.nu[36:42]), [0, 60, 120, 180, 240, 300], atol=1e-9
        )

    def test_rejects_partial_gap_plane(self):
        with pytest.raises(ValidationError):
            qntn_constellation(40)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            qntn_constellation(0)
        with pytest.raises(ValidationError):
            qntn_constellation(114)

    def test_plane_order(self):
        order = qntn_plane_order()
        assert len(order) == 18
        assert order[:6] == (0.0, 60.0, 120.0, 180.0, 240.0, 300.0)
        assert sorted(set(order)) == sorted(order)  # all distinct
        # Final spacing is 20 degrees everywhere.
        assert sorted(order) == [20.0 * i for i in range(18)]


class TestTableIIData:
    def test_row_count(self):
        assert len(TABLE_II_ROWS) == 108

    def test_all_rows_unique(self):
        assert len(set(TABLE_II_ROWS)) == 108

    def test_configurations_prefix(self):
        assert table_ii_configurations(36) == TABLE_II_ROWS[:36]

    def test_configurations_rejects_partial_plane(self):
        with pytest.raises(ValidationError):
            table_ii_configurations(37)

    def test_each_raan_has_six_anomalies(self):
        from collections import Counter

        counts = Counter(r for r, _ in TABLE_II_ROWS)
        assert all(v == 6 for v in counts.values())
        assert len(counts) == 18
