"""Unit and property tests for reference-frame transformations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_ROTATION_RATE_RAD_S, WGS84_A_KM, WGS84_B_KM
from repro.errors import ValidationError
from repro.orbits.frames import (
    ecef_to_eci,
    ecef_to_enu_matrix,
    ecef_to_geodetic,
    eci_to_ecef,
    enu_to_azimuth_elevation,
    geodetic_to_ecef,
    gmst,
)


class TestGmst:
    def test_zero_at_epoch(self):
        assert float(gmst(0.0)) == 0.0

    def test_advances_at_earth_rate(self):
        assert float(gmst(1000.0)) == pytest.approx(EARTH_ROTATION_RATE_RAD_S * 1000.0)

    def test_wraps(self):
        day = 2 * np.pi / EARTH_ROTATION_RATE_RAD_S
        assert float(gmst(day)) == pytest.approx(0.0, abs=1e-9)

    def test_epoch_offset(self):
        assert float(gmst(0.0, 1.5)) == pytest.approx(1.5)


class TestEciEcef:
    def test_identity_at_t0(self):
        r = np.array([7000.0, 100.0, -50.0])
        np.testing.assert_allclose(eci_to_ecef(r, 0.0), r)

    def test_roundtrip(self):
        r = np.array([7000.0, 100.0, -50.0])
        t = 12345.0
        np.testing.assert_allclose(ecef_to_eci(eci_to_ecef(r, t), t), r, atol=1e-9)

    def test_rotation_preserves_norm_and_z(self):
        r = np.array([7000.0, 100.0, -50.0])
        out = eci_to_ecef(r, 5000.0)
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(r))
        assert out[2] == pytest.approx(r[2])

    def test_quarter_turn(self):
        quarter = (np.pi / 2) / EARTH_ROTATION_RATE_RAD_S
        out = eci_to_ecef(np.array([1.0, 0.0, 0.0]), quarter)
        np.testing.assert_allclose(out, [0.0, -1.0, 0.0], atol=1e-9)

    def test_batched_shapes(self):
        r = np.ones((4, 10, 3))
        t = np.linspace(0, 900, 10)[None, :]
        assert eci_to_ecef(r, t).shape == (4, 10, 3)

    def test_rejects_bad_trailing_axis(self):
        with pytest.raises(ValidationError):
            eci_to_ecef(np.ones((3, 2)), 0.0)


class TestGeodetic:
    def test_equator_prime_meridian(self):
        out = geodetic_to_ecef(0.0, 0.0, 0.0)
        np.testing.assert_allclose(out, [WGS84_A_KM, 0.0, 0.0], atol=1e-9)

    def test_north_pole(self):
        out = geodetic_to_ecef(np.pi / 2, 0.0, 0.0)
        np.testing.assert_allclose(out[:2], 0.0, atol=1e-9)
        assert out[2] == pytest.approx(WGS84_B_KM)

    def test_altitude_adds_radially_at_equator(self):
        out = geodetic_to_ecef(0.0, 0.0, 100.0)
        assert out[0] == pytest.approx(WGS84_A_KM + 100.0)

    @given(
        st.floats(min_value=-1.4, max_value=1.4),
        st.floats(min_value=-np.pi, max_value=np.pi),
        st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_property_roundtrip(self, lat, lon, alt):
        r = geodetic_to_ecef(lat, lon, alt)
        lat2, lon2, alt2 = ecef_to_geodetic(r)
        assert float(lat2) == pytest.approx(lat, abs=1e-8)
        assert float(alt2) == pytest.approx(alt, abs=1e-5)
        dlon = abs(float(lon2) - lon) % (2 * np.pi)
        assert min(dlon, 2 * np.pi - dlon) < 1e-9

    def test_vectorized_geodetic_inverse(self):
        lats = np.radians([10.0, 35.0, 60.0])
        lons = np.radians([-85.0, 20.0, 100.0])
        alts = np.array([0.0, 500.0, 30.0])
        r = geodetic_to_ecef(lats, lons, alts)
        lat2, lon2, alt2 = ecef_to_geodetic(r)
        np.testing.assert_allclose(lat2, lats, atol=1e-8)
        np.testing.assert_allclose(alt2, alts, atol=1e-5)


class TestEnu:
    def test_up_vector_has_90_elevation(self):
        t = ecef_to_enu_matrix(np.radians(36.0), np.radians(-85.0))
        site = geodetic_to_ecef(np.radians(36.0), np.radians(-85.0), 0.0)
        above = geodetic_to_ecef(np.radians(36.0), np.radians(-85.0), 100.0)
        _, el, rng = enu_to_azimuth_elevation(t @ (above - site))
        assert float(el) == pytest.approx(np.pi / 2, abs=1e-6)
        assert float(rng) == pytest.approx(100.0, rel=1e-6)

    def test_north_azimuth_zero(self):
        az, el, rng = enu_to_azimuth_elevation(np.array([0.0, 5.0, 0.0]))
        assert float(az) == pytest.approx(0.0)
        assert float(el) == pytest.approx(0.0)

    def test_east_azimuth_90(self):
        az, _, _ = enu_to_azimuth_elevation(np.array([5.0, 0.0, 0.0]))
        assert float(az) == pytest.approx(np.pi / 2)

    def test_zero_vector_safe(self):
        az, el, rng = enu_to_azimuth_elevation(np.zeros(3))
        assert float(rng) == 0.0
        assert float(el) == 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            enu_to_azimuth_elevation(np.ones(4))
