"""Unit and property tests for Kepler-equation solving and anomaly maps."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.orbits.kepler import (
    eccentric_to_mean,
    eccentric_to_true,
    mean_to_eccentric,
    mean_to_true,
    solve_kepler,
    true_to_eccentric,
    true_to_mean,
    wrap_angle,
)


class TestSolveKepler:
    def test_circular_orbit_identity(self):
        """For e = 0 the eccentric anomaly equals the mean anomaly."""
        m = np.linspace(0, 2 * np.pi, 17, endpoint=False)
        np.testing.assert_allclose(solve_kepler(m, 0.0), m, atol=1e-12)

    def test_satisfies_kepler_equation(self):
        m = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        e = 0.3
        big_e = solve_kepler(m, e)
        np.testing.assert_allclose(wrap_angle(big_e - e * np.sin(big_e)), m, atol=1e-10)

    def test_high_eccentricity(self):
        big_e = solve_kepler(0.1, 0.97)
        assert np.isclose(big_e - 0.97 * np.sin(big_e), 0.1, atol=1e-10)

    def test_broadcasting(self):
        m = np.linspace(0, 6, 12).reshape(3, 4)
        e = np.full((3, 4), 0.1)
        assert solve_kepler(m, e).shape == (3, 4)

    def test_scalar_input_returns_array(self):
        out = solve_kepler(1.0, 0.1)
        assert np.ndim(out) == 0 or out.shape == ()

    def test_rejects_parabolic(self):
        with pytest.raises(ValidationError):
            solve_kepler(1.0, 1.0)

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ValidationError):
            solve_kepler(1.0, -0.1)

    @given(
        st.floats(min_value=0.0, max_value=2 * np.pi),
        st.floats(min_value=0.0, max_value=0.95),
    )
    def test_property_residual_below_tolerance(self, m, e):
        big_e = float(solve_kepler(m, e))
        residual = abs(wrap_angle(big_e - e * np.sin(big_e)) - wrap_angle(m))
        # Residual is an angle difference: allow wrap at 2*pi.
        assert min(residual, 2 * np.pi - residual) < 1e-9


class TestAnomalyConversions:
    @given(
        st.floats(min_value=0.0, max_value=2 * np.pi - 1e-9),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_property_mean_true_roundtrip(self, m, e):
        nu = mean_to_true(m, e)
        m_back = float(true_to_mean(nu, e))
        diff = abs(m_back - m)
        assert min(diff, 2 * np.pi - diff) < 1e-9

    @given(
        st.floats(min_value=0.0, max_value=2 * np.pi - 1e-9),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_property_eccentric_true_roundtrip(self, ecc_anom, e):
        nu = eccentric_to_true(ecc_anom, e)
        back = float(true_to_eccentric(nu, e))
        diff = abs(back - ecc_anom)
        assert min(diff, 2 * np.pi - diff) < 1e-9

    def test_circular_all_anomalies_equal(self):
        m = 1.234
        assert float(mean_to_eccentric(m, 0.0)) == pytest.approx(m)
        assert float(mean_to_true(m, 0.0)) == pytest.approx(m)

    def test_perigee_and_apogee_fixed_points(self):
        e = 0.4
        assert float(mean_to_true(0.0, e)) == pytest.approx(0.0, abs=1e-12)
        assert float(mean_to_true(np.pi, e)) == pytest.approx(np.pi, rel=1e-9)

    def test_eccentric_to_mean_matches_definition(self):
        ecc_anom, e = 1.1, 0.2
        assert float(eccentric_to_mean(ecc_anom, e)) == pytest.approx(
            ecc_anom - e * np.sin(ecc_anom)
        )


class TestWrapAngle:
    def test_wraps_negative(self):
        assert float(wrap_angle(-np.pi / 2)) == pytest.approx(3 * np.pi / 2)

    def test_wraps_large(self):
        assert float(wrap_angle(5 * np.pi)) == pytest.approx(np.pi)

    def test_array(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi, -2 * np.pi]))
        np.testing.assert_allclose(out, 0.0, atol=1e-12)
