"""Tests for the movement-sheet-driven Satellite host."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.network.satellite import Satellite


class TestSatellite:
    def test_is_mobile(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        assert sat.is_mobile
        assert sat.kind == "satellite"

    def test_position_sample_and_hold(self, small_ephemeris):
        sat = Satellite("sat-002", small_ephemeris)
        np.testing.assert_array_equal(
            sat.position_ecef_km(0.0), small_ephemeris.positions_ecef_km[2, 0]
        )
        # 59 s into a 60 s cadence still holds sample 0.
        np.testing.assert_array_equal(
            sat.position_ecef_km(59.0), small_ephemeris.positions_ecef_km[2, 0]
        )
        np.testing.assert_array_equal(
            sat.position_ecef_km(60.0), small_ephemeris.positions_ecef_km[2, 1]
        )

    def test_moves_between_samples(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        p0 = sat.position_ecef_km(0.0)
        p1 = sat.position_ecef_km(600.0)
        assert np.linalg.norm(p1 - p0) > 100.0  # LEO moves ~7.6 km/s

    def test_altitude_near_500(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        assert sat.altitude_km_at(300.0) == pytest.approx(500.0, abs=15.0)

    def test_unknown_name_rejected(self, small_ephemeris):
        with pytest.raises(ValidationError):
            Satellite("sat-999", small_ephemeris)

    def test_bad_nominal_altitude_rejected(self, small_ephemeris):
        with pytest.raises(ValidationError):
            Satellite("sat-000", small_ephemeris, nominal_altitude_km=0.0)

    def test_constellation_from_ephemeris(self, small_ephemeris):
        sats = Satellite.constellation_from_ephemeris(small_ephemeris)
        assert len(sats) == small_ephemeris.n_platforms
        assert [s.name for s in sats] == small_ephemeris.names

    def test_initial_geodetic_position_set(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        assert -90 <= sat.lat_deg <= 90
        assert sat.alt_km == pytest.approx(500.0, abs=15.0)
