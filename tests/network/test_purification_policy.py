"""Tests for the twirl + recurrence purification delivery policy."""

import math

import numpy as np
import pytest

from repro.errors import QuantumStateError, ValidationError
from repro.network.protocols import (
    PurificationOutcome,
    distribute_entanglement,
    generate_bell_pair,
    purified_delivery,
    werner_twirl,
)
from repro.quantum.fidelity import pure_state_fidelity
from repro.quantum.states import bell_state, is_density_matrix, maximally_mixed


class TestWernerTwirl:
    def test_preserves_phi_plus_fidelity(self):
        rho = distribute_entanglement([0.7]).rho
        twirled = werner_twirl(rho)
        f_before = pure_state_fidelity(bell_state(), rho, convention="squared")
        f_after = pure_state_fidelity(bell_state(), twirled, convention="squared")
        assert f_after == pytest.approx(f_before, abs=1e-12)

    def test_output_is_werner_form(self):
        twirled = werner_twirl(distribute_entanglement([0.6]).rho)
        assert is_density_matrix(twirled)
        # Werner states are diagonal in the Bell basis with equal weight
        # on the three non-target Bell states.
        from repro.quantum.states import BellState, density_matrix

        weights = [
            float(np.real(np.trace(density_matrix(bell_state(k)) @ twirled)))
            for k in (BellState.PHI_MINUS, BellState.PSI_PLUS, BellState.PSI_MINUS)
        ]
        assert max(weights) - min(weights) < 1e-12

    def test_idempotent(self):
        rho = distribute_entanglement([0.5]).rho
        once = werner_twirl(rho)
        twice = werner_twirl(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_perfect_pair_fixed(self):
        np.testing.assert_allclose(
            werner_twirl(generate_bell_pair()), generate_bell_pair(), atol=1e-12
        )

    def test_maximally_mixed_maps_to_quarter_fidelity_werner(self):
        twirled = werner_twirl(maximally_mixed(2))
        np.testing.assert_allclose(twirled, maximally_mixed(2), atol=1e-12)

    def test_rejects_wrong_shape(self):
        with pytest.raises(QuantumStateError):
            werner_twirl(maximally_mixed(1))


class TestPurifiedDelivery:
    def test_zero_rounds_matches_raw_delivery(self):
        out = purified_delivery(0.7, rounds=0)
        raw = distribute_entanglement([0.7]).fidelity("sqrt")
        assert out.fidelity == pytest.approx(raw)
        assert out.success_probability == 1.0
        assert out.pairs_consumed == 1

    def test_fidelity_increases_with_rounds(self):
        fids = [purified_delivery(0.7, rounds=r).fidelity for r in range(4)]
        assert fids == sorted(fids)
        assert fids[3] > fids[0] + 0.03

    def test_purification_closes_the_fig8_gap(self):
        """Two rounds lift a threshold-grade path (~0.71) from F~0.92 to
        the paper's ~0.95-0.96 regime."""
        out = purified_delivery(0.71, rounds=2)
        assert out.fidelity > 0.95

    def test_cost_accounting(self):
        out = purified_delivery(0.8, rounds=2)
        assert out.pairs_consumed == 4
        assert 0.0 < out.success_probability < 1.0
        assert out.expected_raw_pairs_per_delivered > 4.0

    def test_outcome_type(self):
        assert isinstance(purified_delivery(0.9, 1), PurificationOutcome)

    def test_success_probability_decreases_with_rounds(self):
        probs = [purified_delivery(0.7, rounds=r).success_probability for r in range(4)]
        assert probs == sorted(probs, reverse=True)

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValidationError):
            purified_delivery(0.7, rounds=-1)

    def test_infinite_cost_when_impossible(self):
        outcome = PurificationOutcome(0.5, 0.0, 4, 2)
        assert math.isinf(outcome.expected_raw_pairs_per_delivered)
