"""Tests for the network simulation driver."""

import math

import numpy as np
import pytest

from repro.errors import UnknownHostError
from repro.network.simulator import NetworkSimulator
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity


class TestHapService:
    def test_inter_lan_request_served_via_hap(self, hap_simulator):
        out = hap_simulator.serve_request("ttu-0", "epb-3", 0.0)
        assert out.served
        assert out.path[0] == "ttu-0"
        assert out.path[-1] == "epb-3"
        assert "hap-0" in out.path
        assert 0.9 < out.path_transmissivity < 1.0

    def test_fidelity_near_paper_value(self, hap_simulator):
        outs = [
            hap_simulator.serve_request(src, dst, 0.0)
            for src, dst in [("ttu-0", "epb-0"), ("ttu-2", "ornl-5"), ("epb-9", "ornl-1")]
        ]
        mean_f = np.mean([o.fidelity for o in outs])
        assert mean_f == pytest.approx(0.98, abs=0.01)

    def test_intra_lan_request_uses_fiber(self, hap_simulator):
        out = hap_simulator.serve_request("ttu-0", "ttu-1", 0.0)
        assert out.served
        assert out.path == ("ttu-0", "ttu-1")
        assert out.fidelity > 0.99

    def test_fidelity_matches_closed_form(self, hap_simulator):
        out = hap_simulator.serve_request("ttu-0", "ornl-3", 0.0)
        expected = float(entanglement_fidelity_from_transmissivity(out.path_transmissivity))
        assert out.fidelity == pytest.approx(expected)

    def test_track_states_agrees_with_closed_form(self, hap_simulator):
        tracked = NetworkSimulator(hap_simulator.network, track_states=True)
        out = tracked.serve_request("ttu-0", "epb-3", 0.0)
        assert out.pair is not None
        fast = hap_simulator.serve_request("ttu-0", "epb-3", 0.0)
        assert out.fidelity == pytest.approx(fast.fidelity, abs=1e-9)
        assert out.path == fast.path

    def test_unknown_hosts_rejected(self, hap_simulator):
        with pytest.raises(UnknownHostError):
            hap_simulator.serve_request("nope", "epb-0", 0.0)
        with pytest.raises(UnknownHostError):
            hap_simulator.serve_request("ttu-0", "nope", 0.0)

    def test_all_lans_connected(self, hap_simulator):
        assert hap_simulator.all_lans_connected(0.0)
        assert hap_simulator.lans_connected("ttu", "epb", 0.0)

    def test_batch_matches_individual(self, hap_simulator):
        requests = [("ttu-0", "epb-3"), ("ornl-1", "ttu-2"), ("epb-5", "ornl-9")]
        batch = hap_simulator.serve_requests(requests, 0.0)
        singles = [hap_simulator.serve_request(s, d, 0.0) for s, d in requests]
        for b, s in zip(batch, singles):
            assert b.served == s.served
            assert b.path == s.path
            assert b.fidelity == pytest.approx(s.fidelity)


class TestSatelliteService:
    def test_unserved_when_no_satellite_overhead(self, sat_simulator_small):
        """With only 12 satellites most instants have no relay available."""
        outcomes = [
            sat_simulator_small.serve_request("ttu-0", "epb-0", float(t))
            for t in range(0, 7200, 600)
        ]
        unserved = [o for o in outcomes if not o.served]
        assert unserved, "expected at least one uncovered instant"
        out = unserved[0]
        assert out.path == ()
        assert out.path_transmissivity == 0.0
        assert math.isnan(out.fidelity)

    def test_served_requests_route_through_a_satellite(self, sat_simulator_small):
        served = [
            o
            for t in range(0, 7200, 300)
            if (o := sat_simulator_small.serve_request("ttu-0", "ornl-0", float(t))).served
        ]
        for o in served:
            assert len(o.path) == 3
            relay = o.path[1]
            assert sat_simulator_small.network.host(relay).kind == "satellite"
            assert o.fidelity > 0.5

    def test_graph_cache_invalidation(self, sat_simulator_small):
        g1 = sat_simulator_small.link_graph(0.0)
        assert sat_simulator_small.link_graph(0.0) is g1
        sat_simulator_small.invalidate_cache()
        assert sat_simulator_small.link_graph(0.0) is not g1
