"""Tests for network assembly and link graphs."""

import pytest

from repro.channels.presets import paper_fiber, paper_hap_fso, paper_satellite_fso
from repro.errors import LinkError, UnknownHostError, ValidationError
from repro.network.hap import HAP
from repro.network.host import GroundStation
from repro.network.topology import (
    QuantumNetwork,
    attach_hap,
    attach_satellites,
    build_qntn_ground_network,
)


class TestQuantumNetwork:
    def test_add_and_lookup(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0, 0.0, "lan"))
        assert "a" in net
        assert net.host("a").name == "a"

    def test_duplicate_host_rejected(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0))
        with pytest.raises(ValidationError):
            net.add_host(GroundStation("a", 35.0, -84.0))

    def test_unknown_host_rejected(self):
        with pytest.raises(UnknownHostError):
            QuantumNetwork().host("ghost")

    def test_channel_requires_existing_hosts(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0))
        with pytest.raises(UnknownHostError):
            net.connect("a", "ghost", paper_fiber())

    def test_duplicate_channel_rejected(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0))
        net.add_host(GroundStation("b", 36.001, -85.0))
        net.connect("a", "b", paper_fiber())
        with pytest.raises(LinkError):
            net.connect("b", "a", paper_fiber())

    def test_channel_between(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0))
        net.add_host(GroundStation("b", 36.001, -85.0))
        ch = net.connect("a", "b", paper_fiber())
        assert net.channel_between("b", "a") is ch
        assert net.channel_between("a", "ghost") is None

    def test_local_network_registry(self):
        net = QuantumNetwork()
        net.add_host(GroundStation("a", 36.0, -85.0, 0.0, "x"))
        net.add_host(GroundStation("b", 36.0, -85.1, 0.0, "x"))
        net.add_host(GroundStation("c", 36.0, -85.2, 0.0, "y"))
        assert net.local_networks == {"x": ["a", "b"], "y": ["c"]}


class TestBuildQntnGroundNetwork:
    def test_mesh_counts(self):
        net = build_qntn_ground_network()
        assert net.n_hosts == 31
        # Full mesh per LAN: C(5,2) + C(15,2) + C(11,2) = 10 + 105 + 55.
        assert net.n_channels == 170

    def test_chain_counts(self):
        net = build_qntn_ground_network(intra_topology="chain")
        assert net.n_channels == 4 + 14 + 10

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValidationError):
            build_qntn_ground_network(intra_topology="ring")

    def test_lans_registered(self):
        net = build_qntn_ground_network()
        lans = net.local_networks
        assert set(lans) == {"ttu", "epb", "ornl"}
        assert len(lans["epb"]) == 15

    def test_intra_lan_links_usable_inter_lan_absent(self):
        net = build_qntn_ground_network()
        graph = net.link_graph(0.0)
        assert "ttu-1" in graph["ttu-0"]
        assert all(not n.startswith("epb") for n in graph["ttu-0"])


class TestAttachSatellites:
    def test_channel_fanout(self, small_ephemeris):
        net = build_qntn_ground_network()
        sats = attach_satellites(net, small_ephemeris, paper_satellite_fso())
        assert len(sats) == 12
        assert net.n_hosts == 31 + 12
        assert net.n_channels == 170 + 12 * 31

    def test_isl_option(self, small_ephemeris):
        from repro.channels.presets import paper_isl_fso

        net = build_qntn_ground_network()
        attach_satellites(
            net, small_ephemeris, paper_satellite_fso(), isl_model=paper_isl_fso()
        )
        assert net.n_channels == 170 + 12 * 31 + 12 * 11 // 2

    def test_isl_links_never_usable_with_paper_presets(self, small_ephemeris):
        """QNTN spacing keeps ISLs below the 0.7 threshold at all times."""
        from repro.channels.presets import paper_isl_fso

        net = build_qntn_ground_network()
        attach_satellites(
            net, small_ephemeris, paper_satellite_fso(), isl_model=paper_isl_fso()
        )
        graph = net.link_graph(0.0)
        for sat in net.hosts_of_kind("satellite"):
            for neighbor in graph[sat.name]:
                assert net.host(neighbor).kind == "ground"


class TestAttachHap:
    def test_hap_connected_to_all_ground(self):
        net = build_qntn_ground_network()
        attach_hap(net, HAP(), paper_hap_fso())
        graph = net.link_graph(0.0)
        assert len(graph["hap-0"]) == 31

    def test_hap_links_all_usable(self):
        net = build_qntn_ground_network()
        attach_hap(net, HAP(), paper_hap_fso())
        graph = net.link_graph(0.0)
        assert all(eta > 0.9 for eta in graph["hap-0"].values())
