"""Tests for scenario save/load round trips."""

import numpy as np
import pytest

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.network.serialization import load_network, save_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.utils.intervals import Interval


class TestGroundAndHapRoundTrip:
    def test_topology_preserved(self, tmp_path):
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        path = save_network(network, tmp_path / "scenario.json")
        loaded = load_network(path)
        assert loaded.n_hosts == network.n_hosts
        assert loaded.n_channels == network.n_channels
        assert loaded.local_networks == network.local_networks

    def test_service_identical_after_reload(self, tmp_path):
        network = build_qntn_ground_network()
        attach_hap(network, HAP(), paper_hap_fso())
        loaded = load_network(save_network(network, tmp_path / "s.json"))
        a = NetworkSimulator(network).serve_request("ttu-0", "epb-3", 0.0)
        b = NetworkSimulator(loaded).serve_request("ttu-0", "epb-3", 0.0)
        assert a.path == b.path
        assert a.path_transmissivity == pytest.approx(b.path_transmissivity)

    def test_duty_cycle_windows_preserved(self, tmp_path):
        network = build_qntn_ground_network()
        hap = HAP(operational_windows=[Interval(0.0, 3600.0)])
        attach_hap(network, hap, paper_hap_fso())
        loaded = load_network(save_network(network, tmp_path / "s.json"))
        reloaded_hap = loaded.host("hap-0")
        assert reloaded_hap.is_operational(100.0)
        assert not reloaded_hap.is_operational(5000.0)


class TestSatelliteRoundTrip:
    def test_requires_movement_sheet(self, tmp_path, small_ephemeris):
        network = build_qntn_ground_network()
        attach_satellites(network, small_ephemeris, paper_satellite_fso())
        with pytest.raises(ValidationError):
            save_network(network, tmp_path / "s.json")

    def test_full_round_trip(self, tmp_path, small_ephemeris):
        network = build_qntn_ground_network()
        attach_satellites(network, small_ephemeris, paper_satellite_fso())
        path = save_network(
            network, tmp_path / "s.json", movement_sheet_path=tmp_path / "sheets.csv"
        )
        loaded = load_network(path)
        assert loaded.n_hosts == network.n_hosts
        # Satellite positions preserved exactly through the CSV.
        for t in (0.0, 1800.0):
            np.testing.assert_allclose(
                loaded.host("sat-003").position_ecef_km(t),
                network.host("sat-003").position_ecef_km(t),
            )

    def test_link_graphs_match_after_reload(self, tmp_path, small_ephemeris):
        network = build_qntn_ground_network()
        attach_satellites(network, small_ephemeris, paper_satellite_fso())
        loaded = load_network(
            save_network(
                network, tmp_path / "s.json", movement_sheet_path=tmp_path / "m.csv"
            )
        )
        g1 = network.link_graph(3600.0)
        g2 = loaded.link_graph(3600.0)
        assert set(g1) == set(g2)
        for node in g1:
            assert set(g1[node]) == set(g2[node])
            for nbr in g1[node]:
                assert g1[node][nbr] == pytest.approx(g2[node][nbr])


class TestValidation:
    def test_bad_version_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "hosts": [], "channels": []}')
        with pytest.raises(ValidationError):
            load_network(bad)

    def test_unknown_host_kind_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"version": 1, "movement_sheet": null, "channels": [], '
            '"hosts": [{"kind": "blimp", "name": "x"}]}'
        )
        with pytest.raises(ValidationError):
            load_network(bad)
