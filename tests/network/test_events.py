"""Tests for the discrete-event timeline."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.network.events import EventTimeline


class TestScheduling:
    def test_fires_in_time_order(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(20.0, lambda: fired.append("b"))
        timeline.schedule(10.0, lambda: fired.append("a"))
        timeline.run()
        assert fired == ["a", "b"]

    def test_priority_breaks_ties(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append("low"), priority=5)
        timeline.schedule(10.0, lambda: fired.append("high"), priority=0)
        timeline.run()
        assert fired == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append(1))
        timeline.schedule(10.0, lambda: fired.append(2))
        timeline.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        timeline = EventTimeline()
        timeline.schedule(42.0, lambda: None)
        timeline.run()
        assert timeline.now_s == 42.0

    def test_cannot_schedule_in_past(self):
        timeline = EventTimeline()
        timeline.schedule(10.0, lambda: None)
        timeline.run()
        with pytest.raises(SchedulingError):
            timeline.schedule(5.0, lambda: None)

    def test_events_can_schedule_followups(self):
        timeline = EventTimeline()
        fired = []

        def first():
            fired.append("first")
            timeline.schedule(timeline.now_s + 5.0, lambda: fired.append("second"))

        timeline.schedule(1.0, first)
        timeline.run()
        assert fired == ["first", "second"]
        assert timeline.now_s == 6.0


class TestRunUntil:
    def test_stops_at_boundary(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append("in"))
        timeline.schedule(30.0, lambda: fired.append("out"))
        count = timeline.run_until(20.0)
        assert count == 1
        assert fired == ["in"]
        assert timeline.now_s == 20.0
        assert timeline.pending == 1

    def test_inclusive_boundary(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(20.0, lambda: fired.append("edge"))
        timeline.run_until(20.0)
        assert fired == ["edge"]


class TestPeriodic:
    def test_periodic_count_and_times(self):
        timeline = EventTimeline()
        times = []
        n = timeline.schedule_periodic(0.0, 30.0, 120.0, times.append)
        assert n == 5
        timeline.run()
        assert times == [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_rejects_bad_period(self):
        with pytest.raises(SchedulingError):
            EventTimeline().schedule_periodic(0.0, 0.0, 10.0, lambda t: None)

    def test_processed_counter(self):
        timeline = EventTimeline()
        timeline.schedule_periodic(0.0, 1.0, 4.0, lambda t: None)
        timeline.run()
        assert timeline.processed == 5

    def test_step_returns_none_when_empty(self):
        assert EventTimeline().step() is None


class TestReentrancy:
    """Handlers that touch the timeline while it is firing."""

    def test_handler_may_schedule_at_the_current_instant(self):
        timeline = EventTimeline()
        fired = []

        def outer():
            fired.append("outer")
            timeline.schedule(timeline.now_s, lambda: fired.append("inner"))

        timeline.schedule(10.0, outer)
        timeline.schedule(10.0, lambda: fired.append("sibling"))
        timeline.run()
        # The re-entrant event lands after already-queued same-time events
        # (larger sequence number), never before them.
        assert fired == ["outer", "sibling", "inner"]

    def test_handler_cannot_schedule_in_its_own_past(self):
        timeline = EventTimeline()
        caught = []

        def outer():
            try:
                timeline.schedule(timeline.now_s - 1.0, lambda: None)
            except SchedulingError:
                caught.append(True)

        timeline.schedule(10.0, outer)
        timeline.run()
        assert caught == [True]

    def test_cascading_followups_run_to_completion(self):
        timeline = EventTimeline()
        depths = []

        def spawn(depth):
            depths.append(depth)
            if depth < 5:
                timeline.schedule(
                    timeline.now_s + 1.0, lambda: spawn(depth + 1)
                )

        timeline.schedule(0.0, lambda: spawn(0))
        assert timeline.run() == 6
        assert depths == list(range(6))
        assert timeline.now_s == 5.0

    def test_reentrant_stepping_is_rejected_behavior_free(self):
        """step() inside a handler fires the next event immediately."""
        timeline = EventTimeline()
        fired = []

        def outer():
            fired.append("outer")
            timeline.step()

        timeline.schedule(1.0, outer)
        timeline.schedule(2.0, lambda: fired.append("pulled-forward"))
        timeline.run()
        assert fired == ["outer", "pulled-forward"]
        assert timeline.processed == 2


class TestDeterminism:
    """Identical seeds produce identical firing sequences."""

    def _run_schedule(self, seed, shuffle_seed=None):
        rng = np.random.default_rng(seed)
        times = rng.uniform(0.0, 100.0, size=50)
        priorities = rng.integers(0, 3, size=50)
        entries = list(zip(range(50), times, priorities))
        if shuffle_seed is not None:
            np.random.default_rng(shuffle_seed).shuffle(entries)
        timeline = EventTimeline()
        fired = []
        for label, t, priority in entries:
            timeline.schedule(
                float(t),
                lambda label=label: fired.append(label),
                priority=int(priority),
            )
        timeline.run()
        return fired

    def test_fixed_seed_replays_identically(self):
        assert self._run_schedule(7) == self._run_schedule(7)

    def test_distinct_times_make_order_insertion_independent(self):
        rng = np.random.default_rng(3)
        times = np.unique(rng.uniform(0.0, 100.0, size=40))
        baseline = None
        for shuffle_seed in (0, 1, 2):
            order = list(enumerate(times))
            np.random.default_rng(shuffle_seed).shuffle(order)
            timeline = EventTimeline()
            fired = []
            for label, t in order:
                timeline.schedule(float(t), lambda label=label: fired.append(label))
            timeline.run()
            assert fired == sorted(fired, key=lambda i: times[i])
            if baseline is None:
                baseline = fired
            else:
                assert fired == baseline

    def test_tied_times_fall_back_to_insertion_order(self):
        timeline = EventTimeline()
        fired = []
        for label in range(10):
            timeline.schedule(5.0, lambda label=label: fired.append(label))
        timeline.run()
        assert fired == list(range(10))
