"""Tests for the discrete-event timeline."""

import pytest

from repro.errors import SchedulingError
from repro.network.events import EventTimeline


class TestScheduling:
    def test_fires_in_time_order(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(20.0, lambda: fired.append("b"))
        timeline.schedule(10.0, lambda: fired.append("a"))
        timeline.run()
        assert fired == ["a", "b"]

    def test_priority_breaks_ties(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append("low"), priority=5)
        timeline.schedule(10.0, lambda: fired.append("high"), priority=0)
        timeline.run()
        assert fired == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append(1))
        timeline.schedule(10.0, lambda: fired.append(2))
        timeline.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        timeline = EventTimeline()
        timeline.schedule(42.0, lambda: None)
        timeline.run()
        assert timeline.now_s == 42.0

    def test_cannot_schedule_in_past(self):
        timeline = EventTimeline()
        timeline.schedule(10.0, lambda: None)
        timeline.run()
        with pytest.raises(SchedulingError):
            timeline.schedule(5.0, lambda: None)

    def test_events_can_schedule_followups(self):
        timeline = EventTimeline()
        fired = []

        def first():
            fired.append("first")
            timeline.schedule(timeline.now_s + 5.0, lambda: fired.append("second"))

        timeline.schedule(1.0, first)
        timeline.run()
        assert fired == ["first", "second"]
        assert timeline.now_s == 6.0


class TestRunUntil:
    def test_stops_at_boundary(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(10.0, lambda: fired.append("in"))
        timeline.schedule(30.0, lambda: fired.append("out"))
        count = timeline.run_until(20.0)
        assert count == 1
        assert fired == ["in"]
        assert timeline.now_s == 20.0
        assert timeline.pending == 1

    def test_inclusive_boundary(self):
        timeline = EventTimeline()
        fired = []
        timeline.schedule(20.0, lambda: fired.append("edge"))
        timeline.run_until(20.0)
        assert fired == ["edge"]


class TestPeriodic:
    def test_periodic_count_and_times(self):
        timeline = EventTimeline()
        times = []
        n = timeline.schedule_periodic(0.0, 30.0, 120.0, times.append)
        assert n == 5
        timeline.run()
        assert times == [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_rejects_bad_period(self):
        with pytest.raises(SchedulingError):
            EventTimeline().schedule_periodic(0.0, 0.0, 10.0, lambda t: None)

    def test_processed_counter(self):
        timeline = EventTimeline()
        timeline.schedule_periodic(0.0, 1.0, 4.0, lambda t: None)
        timeline.run()
        assert timeline.processed == 5

    def test_step_returns_none_when_empty(self):
        assert EventTimeline().step() is None
