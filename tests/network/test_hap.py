"""Tests for the HAP host and its duty cycle."""

import pytest

from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.utils.intervals import Interval


class TestDefaults:
    def test_paper_position(self):
        hap = HAP()
        assert hap.lat_deg == QNTN_HAP_LAT_DEG
        assert hap.lon_deg == QNTN_HAP_LON_DEG
        assert hap.alt_km == QNTN_HAP_ALTITUDE_KM
        assert hap.kind == "hap"

    def test_stationary(self):
        import numpy as np

        hap = HAP()
        np.testing.assert_array_equal(hap.position_ecef_km(0.0), hap.position_ecef_km(9999.0))
        assert not hap.is_mobile

    def test_always_operational_by_default(self):
        hap = HAP()
        assert hap.always_operational
        assert hap.is_operational(0.0)
        assert hap.is_operational(86399.0)
        assert hap.operational_fraction(86400.0) == 1.0


class TestDutyCycle:
    def test_windows_respected(self):
        hap = HAP(operational_windows=[Interval(0.0, 3600.0), Interval(7200.0, 10800.0)])
        assert hap.is_operational(100.0)
        assert not hap.is_operational(5000.0)
        assert hap.is_operational(7200.0)
        assert not hap.always_operational

    def test_operational_fraction(self):
        hap = HAP(operational_windows=[Interval(0.0, 21600.0)])
        assert hap.operational_fraction(86400.0) == pytest.approx(0.25)

    def test_rejects_bad_altitude(self):
        with pytest.raises(ValidationError):
            HAP(alt_km=0.0)
