"""Tests for Host and GroundStation."""

import numpy as np
import pytest

from repro.data.ground_nodes import TTU_NODES
from repro.errors import ValidationError
from repro.network.host import GroundStation, Host
from repro.orbits.frames import geodetic_to_ecef


class TestHost:
    def test_position_is_time_independent(self):
        host = Host("h", 36.0, -85.0, 0.5)
        np.testing.assert_array_equal(host.position_ecef_km(0.0), host.position_ecef_km(1e5))

    def test_position_matches_geodetic(self):
        host = Host("h", 36.0, -85.0, 0.5)
        expected = geodetic_to_ecef(host.lat_rad, host.lon_rad, 0.5)
        np.testing.assert_allclose(host.position_ecef_km(0.0), expected)

    def test_not_mobile(self):
        assert not Host("h", 0.0, 0.0).is_mobile

    def test_altitude_at(self):
        assert Host("h", 0.0, 0.0, 2.0).altitude_km_at(55.0) == 2.0

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Host("", 0.0, 0.0)

    def test_rejects_bad_coordinates(self):
        with pytest.raises(ValidationError):
            Host("h", 91.0, 0.0)
        with pytest.raises(ValidationError):
            Host("h", 0.0, 181.0)

    def test_repr_contains_name(self):
        assert "h" in repr(Host("h", 0.0, 0.0))


class TestGroundStation:
    def test_from_ground_node(self):
        station = GroundStation.from_ground_node(TTU_NODES[0])
        assert station.name == "ttu-0"
        assert station.network == "ttu"
        assert station.kind == "ground"
