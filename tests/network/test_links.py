"""Tests for quantum channels and the link admission policy."""

import math

import pytest

from repro.channels.presets import paper_fiber, paper_hap_fso, paper_satellite_fso
from repro.constants import QNTN_MIN_ELEVATION_RAD, QNTN_TRANSMISSIVITY_THRESHOLD
from repro.errors import LinkError
from repro.network.hap import HAP
from repro.network.host import GroundStation
from repro.network.links import ChannelKind, LinkPolicy, QuantumChannel
from repro.network.satellite import Satellite
from repro.utils.intervals import Interval

TTU = GroundStation("ttu-0", 36.1757, -85.5066, 0.0, "ttu")
TTU1 = GroundStation("ttu-1", 36.1751, -85.5067, 0.0, "ttu")
EPB = GroundStation("epb-0", 35.04159, -85.2799, 0.0, "epb")


class TestLinkPolicy:
    def test_defaults_match_paper(self):
        policy = LinkPolicy()
        assert policy.transmissivity_threshold == QNTN_TRANSMISSIVITY_THRESHOLD
        assert policy.min_elevation_rad == QNTN_MIN_ELEVATION_RAD

    def test_admits_good_link(self):
        assert LinkPolicy().admits(0.8, math.radians(45.0), True)

    def test_rejects_low_eta(self):
        assert not LinkPolicy().admits(0.69, math.radians(45.0), True)

    def test_rejects_low_elevation(self):
        assert not LinkPolicy().admits(0.9, math.radians(10.0), True)

    def test_elevation_not_required_for_fiber(self):
        assert LinkPolicy().admits(0.9, float("nan"), False)


class TestFiberChannel:
    def test_intra_lan_fiber_usable(self):
        ch = QuantumChannel(TTU, TTU1, paper_fiber())
        state = ch.evaluate(0.0)
        assert ch.kind is ChannelKind.FIBER
        assert state.usable
        assert state.transmissivity > 0.99
        assert state.distance_km < 1.0

    def test_inter_city_fiber_unusable(self):
        """The paper's core premise: direct fiber between cities fails."""
        ch = QuantumChannel(TTU, EPB, paper_fiber())
        state = ch.evaluate(0.0)
        assert not state.usable
        assert state.transmissivity < 0.05

    def test_fiber_requires_ground_endpoints(self):
        with pytest.raises(LinkError):
            QuantumChannel(TTU, HAP(), paper_fiber())

    def test_same_endpoint_rejected(self):
        with pytest.raises(LinkError):
            QuantumChannel(TTU, TTU, paper_fiber())


class TestHapChannel:
    def test_hap_link_usable(self):
        ch = QuantumChannel(TTU, HAP(), paper_hap_fso())
        state = ch.evaluate(0.0)
        assert ch.kind is ChannelKind.FSO
        assert ch.is_ground_to_platform
        assert state.usable
        assert 0.9 < state.transmissivity < 1.0
        assert state.elevation_rad > QNTN_MIN_ELEVATION_RAD

    def test_duty_cycle_disables_link(self):
        hap = HAP(operational_windows=[Interval(0.0, 100.0)])
        ch = QuantumChannel(TTU, hap, paper_hap_fso())
        assert ch.evaluate(50.0).usable
        off = ch.evaluate(200.0)
        assert not off.usable
        assert off.transmissivity == 0.0

    def test_transmissivity_shortcut(self):
        ch = QuantumChannel(TTU, HAP(), paper_hap_fso())
        assert ch.transmissivity(0.0) == ch.evaluate(0.0).transmissivity


class TestSatelliteChannel:
    def test_states_vary_over_time(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        ch = QuantumChannel(TTU, sat, paper_satellite_fso())
        ranges = {
            round(ch.evaluate(t).distance_km, 3) for t in (0.0, 1800.0, 3600.0, 5400.0)
        }
        assert len(ranges) == 4  # motion changes the geometry every sample

    def test_below_horizon_unusable(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        ch = QuantumChannel(TTU, sat, paper_satellite_fso())
        for t in (0.0, 1800.0, 3600.0):
            state = ch.evaluate(t)
            if state.elevation_rad < 0:
                assert not state.usable
                assert state.transmissivity == 0.0

    def test_policy_threshold_respected(self, small_ephemeris):
        sat = Satellite("sat-000", small_ephemeris)
        ch = QuantumChannel(TTU, sat, paper_satellite_fso())
        for t in range(0, 7200, 300):
            state = ch.evaluate(float(t))
            if state.usable:
                assert state.transmissivity >= QNTN_TRANSMISSIVITY_THRESHOLD
                assert state.elevation_rad >= QNTN_MIN_ELEVATION_RAD

    def test_isl_channel_evaluates(self, small_ephemeris):
        from repro.channels.presets import paper_isl_fso

        a = Satellite("sat-000", small_ephemeris)
        b = Satellite("sat-001", small_ephemeris)
        ch = QuantumChannel(a, b, paper_isl_fso())
        state = ch.evaluate(0.0)
        assert not ch.is_ground_to_platform
        assert math.isnan(state.elevation_rad)
        assert 0.0 <= state.transmissivity < QNTN_TRANSMISSIVITY_THRESHOLD
