"""Tests for the event-driven Poisson workload."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.network.events import EventTimeline
from repro.network.workload import (
    TimedRequest,
    WorkloadReport,
    align_to_grid,
    lans_from_sites,
    poisson_request_stream,
    run_poisson_workload,
)
from repro.utils.seeding import as_generator


class TestPoissonWorkloadHap:
    def test_all_served_on_hap_network(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=600.0, seed=3
        )
        assert report.n_requests > 0
        assert report.served_fraction == 1.0
        assert report.mean_fidelity == pytest.approx(0.98, abs=0.01)

    def test_arrival_count_near_expectation(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.1, duration_s=3600.0, seed=4
        )
        expected = 0.1 * 3600.0
        assert expected * 0.5 < report.n_requests < expected * 1.5

    def test_deterministic_given_seed(self, hap_simulator):
        a = run_poisson_workload(hap_simulator, rate_hz=0.05, duration_s=600.0, seed=9)
        b = run_poisson_workload(hap_simulator, rate_hz=0.05, duration_s=600.0, seed=9)
        assert [o.path for o in a.outcomes] == [o.path for o in b.outcomes]
        assert [o.time_s for o in a.outcomes] == [o.time_s for o in b.outcomes]

    def test_endpoints_cross_lans(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=1200.0, seed=5
        )
        members = hap_simulator.network.local_networks

        def lan_of(node: str) -> str:
            return next(lan for lan, nodes in members.items() if node in nodes)

        for outcome in report.outcomes:
            assert lan_of(outcome.source) != lan_of(outcome.destination)

    def test_arrival_times_increasing_within_horizon(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=900.0, seed=6
        )
        times = [o.time_s for o in report.outcomes]
        assert times == sorted(times)
        assert all(0.0 < t < 900.0 for t in times)


class TestPoissonWorkloadSatellites:
    def test_partial_service_under_sparse_constellation(self, sat_simulator_small):
        report = run_poisson_workload(
            sat_simulator_small, rate_hz=0.01, duration_s=7200.0, seed=7
        )
        # 12 satellites leave most arrivals unserved.
        assert 0.0 <= report.served_fraction < 1.0
        if report.served_fraction == 0.0:
            assert math.isnan(report.mean_fidelity)


class TestWorkloadValidation:
    def test_rejects_bad_rate(self, hap_simulator):
        with pytest.raises(ValidationError):
            run_poisson_workload(hap_simulator, rate_hz=0.0, duration_s=10.0)

    def test_rejects_bad_duration(self, hap_simulator):
        with pytest.raises(ValidationError):
            run_poisson_workload(hap_simulator, rate_hz=1.0, duration_s=0.0)

    def test_empty_report_statistics(self):
        report = WorkloadReport((), 100.0)
        assert math.isnan(report.served_fraction)
        assert math.isnan(report.mean_fidelity)
        assert report.arrival_rate_hz == 0.0


def _legacy_poisson_workload(simulator, *, rate_hz, duration_s, seed):
    """The pre-refactor implementation, verbatim in spirit: closures over
    ``(at, src, dst)`` captured through default arguments, one exponential
    gap then one endpoint draw per arrival, scheduled on an EventTimeline.
    Kept here as the regression oracle for the record-based rewrite."""
    rng = as_generator(seed)
    lans = simulator.network.local_networks
    names = list(lans)
    all_nodes = [(lan, node) for lan in names for node in lans[lan]]
    timeline = EventTimeline()
    outcomes = []

    def draw_pair():
        src_lan, src = all_nodes[int(rng.integers(len(all_nodes)))]
        others = [(lan, node) for lan, node in all_nodes if lan != src_lan]
        _, dst = others[int(rng.integers(len(others)))]
        return src, dst

    t = float(rng.exponential(1.0 / rate_hz))
    while t < duration_s:
        src, dst = draw_pair()

        def serve(at=t, source=src, destination=dst):
            outcomes.append(simulator.serve_request(source, destination, at))

        timeline.schedule(t, serve)
        t += float(rng.exponential(1.0 / rate_hz))
    timeline.run()
    return WorkloadReport(tuple(outcomes), duration_s)


class TestLegacyRegression:
    """The record-based rewrite reproduces the closure-based outputs."""

    @pytest.mark.parametrize("seed", [0, 3, 9, 1234])
    def test_outputs_pinned_to_legacy(self, hap_simulator, seed):
        new = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=900.0, seed=seed
        )
        old = _legacy_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=900.0, seed=seed
        )
        assert new.n_requests == old.n_requests
        for a, b in zip(new.outcomes, old.outcomes):
            assert a.time_s == b.time_s
            assert (a.source, a.destination) == (b.source, b.destination)
            assert a.served == b.served
            assert a.path == b.path

    @pytest.mark.parametrize("seed", [3, 77])
    def test_stream_matches_legacy_arrivals(self, hap_simulator, seed):
        stream = poisson_request_stream(
            hap_simulator.network.local_networks,
            rate_hz=0.05,
            duration_s=900.0,
            seed=seed,
        )
        old = _legacy_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=900.0, seed=seed
        )
        assert [r.t_s for r in stream] == [o.time_s for o in old.outcomes]
        assert [r.endpoints for r in stream] == [
            (o.source, o.destination) for o in old.outcomes
        ]


class TestPoissonRequestStream:
    def test_identity_and_ordering(self, hap_simulator):
        stream = poisson_request_stream(
            hap_simulator.network.local_networks,
            rate_hz=0.1,
            duration_s=600.0,
            seed=5,
        )
        assert [r.request_id for r in stream] == list(range(len(stream)))
        assert all(a.t_s <= b.t_s for a, b in zip(stream, stream[1:]))
        assert all(r.tenant == "default" for r in stream)

    def test_single_tenant_stream_is_tenant_invariant(self, hap_simulator):
        """A one-entry tenant tuple draws nothing from the RNG."""
        lans = hap_simulator.network.local_networks
        kwargs = dict(rate_hz=0.1, duration_s=600.0, seed=5)
        default = poisson_request_stream(lans, **kwargs)
        named = poisson_request_stream(lans, tenants=("gold",), **kwargs)
        assert [(r.t_s, r.endpoints) for r in default] == [
            (r.t_s, r.endpoints) for r in named
        ]
        assert all(r.tenant == "gold" for r in named)

    def test_multi_tenant_labels_drawn_from_offered_set(self, hap_simulator):
        stream = poisson_request_stream(
            hap_simulator.network.local_networks,
            rate_hz=0.2,
            duration_s=600.0,
            seed=5,
            tenants=("a", "b"),
        )
        assert {r.tenant for r in stream} == {"a", "b"}

    def test_validation(self, hap_simulator):
        lans = hap_simulator.network.local_networks
        with pytest.raises(ValidationError):
            poisson_request_stream(lans, rate_hz=0.0, duration_s=10.0)
        with pytest.raises(ValidationError):
            poisson_request_stream(lans, rate_hz=1.0, duration_s=0.0)
        with pytest.raises(ValidationError):
            poisson_request_stream(lans, rate_hz=1.0, duration_s=10.0, tenants=())
        with pytest.raises(ValidationError):
            poisson_request_stream({"only": ["a"]}, rate_hz=1.0, duration_s=10.0)


class TestAlignToGrid:
    def test_snaps_to_most_recent_sample(self):
        grid = np.array([0.0, 60.0, 120.0])
        requests = (
            TimedRequest(0, -5.0, "a", "b"),
            TimedRequest(1, 59.9, "a", "b"),
            TimedRequest(2, 60.0, "a", "b"),
            TimedRequest(3, 500.0, "a", "b"),
        )
        aligned = align_to_grid(requests, grid)
        assert [r.t_s for r in aligned] == [0.0, 0.0, 60.0, 120.0]
        assert [r.request_id for r in aligned] == [0, 1, 2, 3]
        assert all(a.endpoints == b.endpoints for a, b in zip(requests, aligned))


class TestLansFromSites:
    def test_first_seen_order_and_membership(self):
        class Site:
            def __init__(self, name, network):
                self.name = name
                self.network = network

        sites = [Site("x1", "X"), Site("y1", "Y"), Site("x2", "X")]
        lans = lans_from_sites(sites)
        assert list(lans) == ["X", "Y"]
        assert lans == {"X": ["x1", "x2"], "Y": ["y1"]}

    def test_round_trips_the_simulator_lans(self, hap_simulator):
        from repro.data.ground_nodes import all_ground_nodes

        lans = lans_from_sites(all_ground_nodes())
        assert lans == {
            lan: list(nodes)
            for lan, nodes in hap_simulator.network.local_networks.items()
        }
