"""Tests for the event-driven Poisson workload."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.network.workload import WorkloadReport, run_poisson_workload


class TestPoissonWorkloadHap:
    def test_all_served_on_hap_network(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=600.0, seed=3
        )
        assert report.n_requests > 0
        assert report.served_fraction == 1.0
        assert report.mean_fidelity == pytest.approx(0.98, abs=0.01)

    def test_arrival_count_near_expectation(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.1, duration_s=3600.0, seed=4
        )
        expected = 0.1 * 3600.0
        assert expected * 0.5 < report.n_requests < expected * 1.5

    def test_deterministic_given_seed(self, hap_simulator):
        a = run_poisson_workload(hap_simulator, rate_hz=0.05, duration_s=600.0, seed=9)
        b = run_poisson_workload(hap_simulator, rate_hz=0.05, duration_s=600.0, seed=9)
        assert [o.path for o in a.outcomes] == [o.path for o in b.outcomes]
        assert [o.time_s for o in a.outcomes] == [o.time_s for o in b.outcomes]

    def test_endpoints_cross_lans(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=1200.0, seed=5
        )
        members = hap_simulator.network.local_networks

        def lan_of(node: str) -> str:
            return next(lan for lan, nodes in members.items() if node in nodes)

        for outcome in report.outcomes:
            assert lan_of(outcome.source) != lan_of(outcome.destination)

    def test_arrival_times_increasing_within_horizon(self, hap_simulator):
        report = run_poisson_workload(
            hap_simulator, rate_hz=0.05, duration_s=900.0, seed=6
        )
        times = [o.time_s for o in report.outcomes]
        assert times == sorted(times)
        assert all(0.0 < t < 900.0 for t in times)


class TestPoissonWorkloadSatellites:
    def test_partial_service_under_sparse_constellation(self, sat_simulator_small):
        report = run_poisson_workload(
            sat_simulator_small, rate_hz=0.01, duration_s=7200.0, seed=7
        )
        # 12 satellites leave most arrivals unserved.
        assert 0.0 <= report.served_fraction < 1.0
        if report.served_fraction == 0.0:
            assert math.isnan(report.mean_fidelity)


class TestWorkloadValidation:
    def test_rejects_bad_rate(self, hap_simulator):
        with pytest.raises(ValidationError):
            run_poisson_workload(hap_simulator, rate_hz=0.0, duration_s=10.0)

    def test_rejects_bad_duration(self, hap_simulator):
        with pytest.raises(ValidationError):
            run_poisson_workload(hap_simulator, rate_hz=1.0, duration_s=0.0)

    def test_empty_report_statistics(self):
        report = WorkloadReport((), 100.0)
        assert math.isnan(report.served_fraction)
        assert math.isnan(report.mean_fidelity)
        assert report.arrival_rate_hz == 0.0
