"""Tests for entanglement distribution, swapping, and purification."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantumStateError, ValidationError
from repro.network.protocols import (
    controlled_not,
    dejmps_purification,
    distribute_entanglement,
    entanglement_swap,
    generate_bell_pair,
)
from repro.quantum.channels import amplitude_damping
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity, pure_state_fidelity
from repro.quantum.states import BellState, bell_state, density_matrix, is_density_matrix, ket

etas = st.floats(min_value=0.0, max_value=1.0)


class TestGenerateBellPair:
    def test_default_phi_plus(self):
        np.testing.assert_allclose(generate_bell_pair(), density_matrix(bell_state()))

    def test_other_kinds(self):
        rho = generate_bell_pair(BellState.PSI_MINUS)
        assert pure_state_fidelity(bell_state("psi-"), rho) == pytest.approx(1.0)


class TestDistributeEntanglement:
    def test_single_perfect_link(self):
        pair = distribute_entanglement([1.0])
        assert pair.fidelity() == pytest.approx(1.0)
        assert pair.path_transmissivity == 1.0

    def test_endpoint_labels(self):
        pair = distribute_entanglement([0.9], source="a", destination="b")
        assert (pair.source, pair.destination) == ("a", "b")

    @given(st.lists(etas, min_size=1, max_size=5))
    def test_property_multihop_equals_single_hop_with_product(self, link_etas):
        """Hop-by-hop Kraus application == one damping with the product."""
        multi = distribute_entanglement(link_etas)
        single = distribute_entanglement([float(np.prod(link_etas))])
        np.testing.assert_allclose(multi.rho, single.rho, atol=1e-12)
        assert multi.path_transmissivity == pytest.approx(single.path_transmissivity)

    @given(etas)
    def test_property_fidelity_matches_closed_form(self, eta):
        pair = distribute_entanglement([eta])
        closed = float(entanglement_fidelity_from_transmissivity(eta))
        assert pair.fidelity("sqrt") == pytest.approx(closed, abs=1e-12)

    def test_output_always_density_matrix(self):
        pair = distribute_entanglement([0.3, 0.8, 0.5])
        assert is_density_matrix(pair.rho)

    def test_rejects_empty_path(self):
        with pytest.raises(ValidationError):
            distribute_entanglement([])

    def test_rejects_bad_eta(self):
        with pytest.raises(ValidationError):
            distribute_entanglement([1.2])


class TestControlledNot:
    def test_adjacent_matches_standard_cnot(self):
        from repro.quantum.operators import CNOT

        np.testing.assert_allclose(controlled_not(0, 1, 2), CNOT)

    def test_distant_qubits(self):
        cx = controlled_not(0, 2, 3)
        np.testing.assert_allclose(cx @ ket(1, 0, 0), ket(1, 0, 1))
        np.testing.assert_allclose(cx @ ket(0, 0, 0), ket(0, 0, 0))

    def test_reversed_control_target(self):
        cx = controlled_not(1, 0, 2)
        np.testing.assert_allclose(cx @ ket(0, 1), ket(1, 1))

    def test_rejects_same_qubit(self):
        with pytest.raises(QuantumStateError):
            controlled_not(1, 1, 2)


class TestEntanglementSwap:
    def test_perfect_pairs_swap_to_phi_plus(self):
        rho = generate_bell_pair()
        swapped, probs = entanglement_swap(rho, rho)
        assert pure_state_fidelity(bell_state(), swapped) == pytest.approx(1.0)
        for p in probs.values():
            assert p == pytest.approx(0.25)

    def test_swap_of_damped_pairs_composes_losses(self):
        """Swapping pairs damped by eta1 and eta2 behaves like a path with
        transmissivity eta1*eta2 (for one-sided damping toward the relay)."""
        eta1, eta2 = 0.9, 0.8
        rho_ab = distribute_entanglement([eta1]).rho
        rho_cd = distribute_entanglement([eta2]).rho
        swapped, _ = entanglement_swap(rho_ab, rho_cd)
        assert is_density_matrix(swapped)
        f_swap = pure_state_fidelity(bell_state(), swapped, convention="sqrt")
        # Swapping mixes outcomes, so fidelity is bounded by the ideal
        # composed-path value and must still beat the separable bound.
        ideal = float(entanglement_fidelity_from_transmissivity(eta1 * eta2))
        assert 0.5 < f_swap <= ideal + 1e-9

    def test_probabilities_sum_to_one(self):
        rho1 = distribute_entanglement([0.6]).rho
        rho2 = distribute_entanglement([0.4]).rho
        _, probs = entanglement_swap(rho1, rho2)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_rejects_wrong_dims(self):
        with pytest.raises(QuantumStateError):
            entanglement_swap(np.eye(2) / 2, generate_bell_pair())


class TestDejmpsPurification:
    def test_werner_state_gain_matches_bbpssw_formula(self):
        f = 0.85
        phi = generate_bell_pair()
        werner = f * phi + (1 - f) / 3.0 * (np.eye(4, dtype=complex) - phi)
        p, out = dejmps_purification(werner, werner)
        f_out = pure_state_fidelity(bell_state(), out, convention="squared")
        expected = (f**2 + ((1 - f) / 3) ** 2) / (
            f**2 + 2 * f * (1 - f) / 3 + 5 * ((1 - f) / 3) ** 2
        )
        assert f_out == pytest.approx(expected, abs=1e-9)
        assert f_out > f
        assert 0.0 < p < 1.0

    def test_perfect_pairs_always_succeed(self):
        rho = generate_bell_pair()
        p, out = dejmps_purification(rho, rho)
        assert p == pytest.approx(1.0)
        assert pure_state_fidelity(bell_state(), out) == pytest.approx(1.0)

    def test_output_is_density_matrix(self):
        rho = distribute_entanglement([0.7]).rho
        _, out = dejmps_purification(rho, rho)
        assert is_density_matrix(out)

    def test_rejects_wrong_dims(self):
        with pytest.raises(QuantumStateError):
            dejmps_purification(np.eye(2) / 2, generate_bell_pair())


class TestDeterminism:
    """Protocol outputs are bit-identical across repeated seeded runs.

    The protocol layer is pure linear algebra — any nondeterminism here
    (thread-dependent reductions, input mutation) would break the
    streaming-vs-batch bit-identity the serve harness asserts, so it is
    pinned at the source.
    """

    def _random_path(self, seed, n_hops=4):
        rng = np.random.default_rng(seed)
        return rng.uniform(0.05, 1.0, size=n_hops).tolist()

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_distribution_replays_bit_identically(self, seed):
        first = distribute_entanglement(self._random_path(seed))
        second = distribute_entanglement(self._random_path(seed))
        assert np.array_equal(first.rho, second.rho)
        assert first.path_transmissivity == second.path_transmissivity
        assert first.fidelity() == second.fidelity()

    @pytest.mark.parametrize("seed", [1, 42])
    def test_swap_replays_bit_identically(self, seed):
        eta1, eta2 = self._random_path(seed, n_hops=2)
        rho_ab = distribute_entanglement([eta1]).rho
        rho_cd = distribute_entanglement([eta2]).rho
        out1, probs1 = entanglement_swap(rho_ab, rho_cd)
        out2, probs2 = entanglement_swap(rho_ab.copy(), rho_cd.copy())
        assert np.array_equal(out1, out2)
        assert probs1 == probs2

    @pytest.mark.parametrize("seed", [2, 99])
    def test_purification_replays_bit_identically(self, seed):
        eta = self._random_path(seed, n_hops=1)[0]
        rho = distribute_entanglement([eta]).rho
        p1, out1 = dejmps_purification(rho, rho)
        p2, out2 = dejmps_purification(rho.copy(), rho.copy())
        assert p1 == p2
        assert np.array_equal(out1, out2)

    def test_protocols_do_not_mutate_inputs(self):
        rho_a = distribute_entanglement([0.7]).rho
        rho_b = distribute_entanglement([0.4]).rho
        before_a, before_b = rho_a.copy(), rho_b.copy()
        entanglement_swap(rho_a, rho_b)
        dejmps_purification(rho_a, rho_b)
        assert np.array_equal(rho_a, before_a)
        assert np.array_equal(rho_b, before_b)
