"""Tests for the teleportation protocol over delivered pairs."""

import numpy as np
import pytest

from repro.errors import QuantumStateError, ValidationError
from repro.network.protocols import (
    average_teleportation_fidelity,
    distribute_entanglement,
    generate_bell_pair,
    teleport,
)
from repro.quantum.states import (
    density_matrix,
    is_density_matrix,
    ket,
    maximally_mixed,
    random_pure_state,
)


class TestTeleport:
    def test_perfect_resource_is_identity_channel(self, rng):
        for _ in range(5):
            psi = random_pure_state(1, rng)
            out = teleport(psi, generate_bell_pair())
            assert float(np.real(psi.conj() @ out @ psi)) == pytest.approx(1.0)

    def test_accepts_density_matrix_input(self):
        rho_in = maximally_mixed(1)
        out = teleport(rho_in, generate_bell_pair())
        np.testing.assert_allclose(out, rho_in, atol=1e-12)

    def test_output_is_density_matrix(self, rng):
        psi = random_pure_state(1, rng)
        resource = distribute_entanglement([0.6]).rho
        assert is_density_matrix(teleport(psi, resource))

    def test_useless_resource_gives_half_fidelity(self):
        """Teleporting through a separable maximally mixed resource yields
        the maximally mixed output for any input."""
        out = teleport(ket(0), maximally_mixed(2))
        np.testing.assert_allclose(out, maximally_mixed(1), atol=1e-12)

    def test_normalises_unnormalised_ket(self):
        out_a = teleport(2.0 * ket(1), generate_bell_pair())
        out_b = teleport(ket(1), generate_bell_pair())
        np.testing.assert_allclose(out_a, out_b, atol=1e-12)

    def test_rejects_bad_shapes(self):
        with pytest.raises(QuantumStateError):
            teleport(np.zeros(3), generate_bell_pair())
        with pytest.raises(QuantumStateError):
            teleport(ket(0), maximally_mixed(1))


class TestAverageTeleportationFidelity:
    def test_perfect_resource(self):
        assert average_teleportation_fidelity(generate_bell_pair(), 32) == pytest.approx(
            1.0, abs=1e-9
        )

    @pytest.mark.parametrize("eta", [0.9, 0.7, 0.49])
    def test_matches_textbook_relation(self, eta):
        """F_tel = (2 F + 1) / 3 with F the Jozsa Bell fidelity."""
        pair = distribute_entanglement([eta])
        f_joz = pair.fidelity("squared")
        measured = average_teleportation_fidelity(pair.rho, 256)
        assert measured == pytest.approx((2 * f_joz + 1) / 3, abs=5e-3)

    def test_paper_threshold_beats_classical_limit(self):
        """The classical teleportation bound is 2/3; threshold-grade pairs
        (single link eta = 0.7) clear it comfortably — the paper's
        'sufficient for high-fidelity teleportation' claim."""
        pair = distribute_entanglement([0.7])
        assert average_teleportation_fidelity(pair.rho, 128) > 0.85

    def test_classical_resource_hits_the_classical_value(self):
        """A maximally mixed resource teleports at fidelity 1/2."""
        f = average_teleportation_fidelity(maximally_mixed(2), 128)
        assert f == pytest.approx(0.5, abs=1e-9)

    def test_rejects_bad_samples(self):
        with pytest.raises(ValidationError):
            average_teleportation_fidelity(generate_bell_pair(), 0)
