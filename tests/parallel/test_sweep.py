"""Tests for process-pool sweeps (serial and parallel paths)."""

import math
import os

import numpy as np
import pytest

from repro.core.requests import generate_requests
from repro.errors import ValidationError
from repro.parallel.sweep import (
    SweepResult,
    default_worker_count,
    parallel_map,
    parallel_service_sweep,
    parallel_sweep,
)


def square(x):
    return x * x


def seeded_draw(param, seed=None):
    rng = np.random.default_rng(seed)
    return (param, float(rng.random()))


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], n_workers=0) == [1, 4, 9]

    def test_process_pool_path(self):
        assert parallel_map(square, [1, 2, 3, 4], n_workers=2) == [1, 4, 9, 16]

    def test_order_preserved_with_chunking(self):
        items = list(range(20))
        assert parallel_map(square, items, n_workers=2, chunksize=3) == [x * x for x in items]

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [7], n_workers=4) == [49]

    def test_rejects_bad_workers(self):
        with pytest.raises(ValidationError):
            parallel_map(square, [1], n_workers=-1)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValidationError):
            parallel_map(square, [1, 2], chunksize=0)


class TestParallelSweep:
    def test_unseeded_calls_without_seed_kw(self):
        result = parallel_sweep(square, [2, 3], n_workers=0)
        assert result.results == (4, 9)
        assert result.parameters == (2, 3)

    def test_seeded_results_reproducible(self):
        a = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        b = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        assert a.results == b.results

    def test_seeded_results_independent_of_worker_count(self):
        serial = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        pooled = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=2)
        assert serial.results == pooled.results

    def test_tasks_get_distinct_streams(self):
        result = parallel_sweep(seeded_draw, ["x", "y"], seed=11, n_workers=0)
        assert result.results[0][1] != result.results[1][1]

    def test_as_dict(self):
        result = parallel_sweep(square, [2, 3], n_workers=0)
        assert result.as_dict() == {2: 4, 3: 9}

    def test_elapsed_recorded(self):
        result = parallel_sweep(square, [1], n_workers=0)
        assert result.elapsed_s >= 0.0
        assert isinstance(result, SweepResult)


def outcomes_identical(a, b):
    """NaN-aware fieldwise equality of two RequestOutcome lists-of-lists."""
    if len(a) != len(b):
        return False
    for step_a, step_b in zip(a, b):
        for x, y in zip(step_a, step_b):
            if (x.source, x.destination, x.time_s, x.served, x.path) != (
                y.source,
                y.destination,
                y.time_s,
                y.served,
                y.path,
            ):
                return False
            for fx, fy in ((x.fidelity, y.fidelity), (x.path_transmissivity, y.path_transmissivity)):
                if math.isnan(fx) != math.isnan(fy):
                    return False
                if not math.isnan(fx) and fx != fy:
                    return False
    return True


class TestParallelServiceSweep:
    """Determinism of the time-sharded day sweep (ISSUE satellite 4)."""

    @pytest.fixture(scope="class")
    def workload(self, sites):
        return generate_requests(sites, 10, 3)

    def test_serial_vs_pool_identical(self, small_ephemeris, workload):
        indices = list(range(0, small_ephemeris.n_samples, 10))
        serial = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0
        )
        pooled = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2
        )
        assert outcomes_identical(serial, pooled)

    def test_shard_count_does_not_change_results(self, small_ephemeris, workload):
        indices = list(range(0, small_ephemeris.n_samples, 10))
        one = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0, n_shards=1
        )
        many = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0, n_shards=4
        )
        assert outcomes_identical(one, many)

    def test_cached_matches_direct(self, small_ephemeris, workload):
        indices = list(range(0, small_ephemeris.n_samples, 20))
        cached = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0
        )
        direct = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0, use_cache=False
        )
        assert outcomes_identical(cached, direct)

    def test_one_step_list_per_time_index(self, small_ephemeris, workload):
        results = parallel_service_sweep(
            small_ephemeris, workload, time_indices=[0, 30, 60], n_workers=0
        )
        assert len(results) == 3
        assert all(len(step) == len(workload) for step in results)
        assert [step[0].time_s for step in results] == [
            float(small_ephemeris.times_s[i]) for i in (0, 30, 60)
        ]

    def test_plain_pairs_accepted(self, small_ephemeris):
        results = parallel_service_sweep(
            small_ephemeris, [("ttu-0", "ttu-1")], time_indices=[0], n_workers=0
        )
        assert results[0][0].source == "ttu-0"

    def test_empty_indices_returns_empty(self, small_ephemeris, workload):
        assert parallel_service_sweep(
            small_ephemeris, workload, time_indices=[], n_workers=0
        ) == []


class TestDefaultWorkerCount:
    def test_at_least_one(self):
        assert default_worker_count() >= 1
        assert default_worker_count() <= (os.cpu_count() or 2)


class TestServiceSweepTelemetry:
    """Cross-process metric aggregation and per-worker shard reports."""

    @pytest.fixture(scope="class")
    def workload(self, sites):
        return generate_requests(sites, 10, 3)

    @pytest.fixture()
    def telemetry(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            yield obs
        finally:
            obs.disable()
            obs.reset()

    def _request_counts(self, obs):
        snap = obs.registry().snapshot()
        return (
            snap["network.requests.served"]["value"],
            snap["network.requests.denied"]["value"],
        )

    def test_pooled_counts_equal_serial(self, small_ephemeris, workload, telemetry):
        indices = list(range(0, small_ephemeris.n_samples, 20))
        parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0
        )
        serial_counts = self._request_counts(telemetry)
        assert sum(serial_counts) == len(indices) * len(workload)
        telemetry.reset()
        parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2
        )
        assert self._request_counts(telemetry) == serial_counts

    def test_worker_reports_recorded_per_shard(
        self, small_ephemeris, workload, telemetry
    ):
        indices = list(range(0, small_ephemeris.n_samples, 20))
        parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2, n_shards=3
        )
        reports = telemetry.worker_reports()
        assert len(reports) == 3
        assert sum(r["n_steps"] for r in reports) == len(indices)
        for r in reports:
            assert set(r["timings_s"]) == {"attach", "build", "serve", "total"}
            assert r["first_index"] <= r["last_index"]
            assert "metrics" not in r  # deltas are merged, not duplicated

    def test_disabled_sweep_records_nothing(self, small_ephemeris, workload):
        from repro import obs

        obs.reset()
        indices = list(range(0, small_ephemeris.n_samples, 40))
        parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2
        )
        served, denied = self._request_counts(obs)
        assert (served, denied) == (0.0, 0.0)
        assert obs.worker_reports() == []
