"""Tests for process-pool sweeps (serial and parallel paths)."""

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel.sweep import SweepResult, default_worker_count, parallel_map, parallel_sweep


def square(x):
    return x * x


def seeded_draw(param, seed=None):
    rng = np.random.default_rng(seed)
    return (param, float(rng.random()))


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], n_workers=0) == [1, 4, 9]

    def test_process_pool_path(self):
        assert parallel_map(square, [1, 2, 3, 4], n_workers=2) == [1, 4, 9, 16]

    def test_order_preserved_with_chunking(self):
        items = list(range(20))
        assert parallel_map(square, items, n_workers=2, chunksize=3) == [x * x for x in items]

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [7], n_workers=4) == [49]

    def test_rejects_bad_workers(self):
        with pytest.raises(ValidationError):
            parallel_map(square, [1], n_workers=-1)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValidationError):
            parallel_map(square, [1, 2], chunksize=0)


class TestParallelSweep:
    def test_unseeded_calls_without_seed_kw(self):
        result = parallel_sweep(square, [2, 3], n_workers=0)
        assert result.results == (4, 9)
        assert result.parameters == (2, 3)

    def test_seeded_results_reproducible(self):
        a = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        b = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        assert a.results == b.results

    def test_seeded_results_independent_of_worker_count(self):
        serial = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=0)
        pooled = parallel_sweep(seeded_draw, ["x", "y", "z"], seed=11, n_workers=2)
        assert serial.results == pooled.results

    def test_tasks_get_distinct_streams(self):
        result = parallel_sweep(seeded_draw, ["x", "y"], seed=11, n_workers=0)
        assert result.results[0][1] != result.results[1][1]

    def test_as_dict(self):
        result = parallel_sweep(square, [2, 3], n_workers=0)
        assert result.as_dict() == {2: 4, 3: 9}

    def test_elapsed_recorded(self):
        result = parallel_sweep(square, [1], n_workers=0)
        assert result.elapsed_s >= 0.0
        assert isinstance(result, SweepResult)


class TestDefaultWorkerCount:
    def test_at_least_one(self):
        assert default_worker_count() >= 1
        assert default_worker_count() <= (os.cpu_count() or 2)
