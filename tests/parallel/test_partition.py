"""Unit and property tests for domain decompositions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.parallel.partition import block_partition, cyclic_partition, partition_bounds


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_goes_to_leading_blocks(self):
        assert partition_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        bounds = partition_bounds(2, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [1, 1, 0, 0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            partition_bounds(5, 0)
        with pytest.raises(ValidationError):
            partition_bounds(-1, 2)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=16))
    def test_property_blocks_tile_range(self, n, p):
        bounds = partition_bounds(n, p)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (lo1, hi1), (lo2, hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestBlockPartition:
    def test_preserves_order(self):
        assert block_partition([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=8))
    def test_property_concatenation_is_identity(self, items, p):
        blocks = block_partition(items, p)
        assert [x for block in blocks for x in block] == items


class TestCyclicPartition:
    def test_round_robin(self):
        assert cyclic_partition([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=8))
    def test_property_multiset_preserved(self, items, p):
        parts = cyclic_partition(items, p)
        assert sorted(x for part in parts for x in part) == sorted(items)

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=8))
    def test_property_balanced(self, items, p):
        parts = cyclic_partition(items, p)
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_zero_parts(self):
        with pytest.raises(ValidationError):
            cyclic_partition([1], 0)
