"""Shared-memory arena/attachment lifecycle and sweep determinism.

The invariants pinned here back the zero-copy dispatch plane:

* publish -> attach round-trips are byte-exact, read-only, zero-copy;
* the parent-side :class:`ShmArena` owns segment lifetime — close
  unlinks everything, is idempotent, and runs on context exit even when
  the body raises; worker-side attachments never unlink;
* sweeps over shared memory return results identical to the pickling
  path and to serial execution, for any worker count.
"""

import glob
import math

import numpy as np
import pytest

from repro.core.requests import generate_requests
from repro.errors import ValidationError
from repro.parallel.shm import (
    ShmArena,
    ShmAttachment,
    attach_arrays,
    attach_budget_table,
    attach_ephemeris,
    publish_budget_table,
    publish_ephemeris,
    shared_arrays,
)
from repro.parallel.sweep import parallel_service_sweep, parallel_sweep

from .test_sweep import outcomes_identical


def _shm_segment_names() -> set[str]:
    return {path.rsplit("/", 1)[-1] for path in glob.glob("/dev/shm/psm_*")}


class TestArenaLifecycle:
    def test_round_trip_byte_exact(self, rng):
        data = rng.normal(size=(7, 13))
        with ShmArena() as arena, ShmAttachment() as attachment:
            spec = arena.publish(data)
            view = attachment.attach(spec)
            np.testing.assert_array_equal(view, data)
            assert view.dtype == data.dtype

    def test_attached_views_are_read_only(self, rng):
        with ShmArena() as arena, ShmAttachment() as attachment:
            view = attachment.attach(arena.publish(rng.normal(size=8)))
            assert not view.flags.writeable
            with pytest.raises((ValueError, OSError)):
                view[0] = 0.0

    def test_close_unlinks_segments(self, rng):
        before = _shm_segment_names()
        arena = ShmArena()
        spec = arena.publish(rng.normal(size=64))
        assert arena.total_bytes == 64 * 8
        arena.close()
        arena.close()  # idempotent
        assert _shm_segment_names() <= before
        with pytest.raises(FileNotFoundError):
            ShmAttachment().attach(spec)

    def test_context_exit_cleans_up_on_error(self, rng):
        before = _shm_segment_names()
        with pytest.raises(RuntimeError):
            with ShmArena() as arena:
                arena.publish(rng.normal(size=32))
                raise RuntimeError("worker blew up")
        assert _shm_segment_names() <= before

    def test_publish_rejects_closed_arena_and_empty_arrays(self):
        arena = ShmArena()
        with pytest.raises(ValidationError):
            arena.publish(np.array([]))
        arena.close()
        with pytest.raises(ValidationError):
            arena.publish(np.ones(3))

    def test_attachment_close_does_not_unlink(self, rng):
        with ShmArena() as arena:
            spec = arena.publish(rng.normal(size=16))
            attachment = ShmAttachment()
            attachment.attach(spec)
            attachment.close()
            # the segment must still be attachable: only the arena unlinks
            with ShmAttachment() as again:
                assert again.attach(spec).shape == (16,)


class TestHandles:
    def test_ephemeris_round_trip(self, small_ephemeris):
        with ShmArena() as arena, ShmAttachment() as attachment:
            handle = publish_ephemeris(arena, small_ephemeris)
            rebuilt = attach_ephemeris(handle, attachment)
            np.testing.assert_array_equal(rebuilt.times_s, small_ephemeris.times_s)
            np.testing.assert_array_equal(
                rebuilt.positions_ecef_km, small_ephemeris.positions_ecef_km
            )
            assert rebuilt.names == small_ephemeris.names
            assert handle.payload_bytes == (
                small_ephemeris.times_s.nbytes
                + small_ephemeris.positions_ecef_km.nbytes
            )

    def test_slices_survive_attachment_close(self, small_ephemeris):
        with ShmArena() as arena:
            handle = publish_ephemeris(arena, small_ephemeris)
            attachment = ShmAttachment()
            rebuilt = attach_ephemeris(handle, attachment)
            shard = rebuilt.at_time_indices([0, 5, 10])
            attachment.close()
            np.testing.assert_array_equal(
                shard.positions_ecef_km,
                small_ephemeris.at_time_indices([0, 5, 10]).positions_ecef_km,
            )

    def test_budget_table_round_trip(self, small_ephemeris, sites):
        from repro.channels.presets import paper_satellite_fso
        from repro.engine.budgets import LinkBudgetTable

        table = LinkBudgetTable(small_ephemeris, sites[:4], paper_satellite_fso())
        with ShmArena() as arena, ShmAttachment() as attachment:
            handle = publish_budget_table(arena, table)
            rebuilt = attach_budget_table(handle, attachment)
            assert rebuilt.site_names == table.site_names
            for name in table.site_names:
                a, b = table.budget(name), rebuilt.budget(name)
                np.testing.assert_array_equal(a.elevation_rad, b.elevation_rad)
                np.testing.assert_array_equal(a.slant_range_km, b.slant_range_km)
                np.testing.assert_array_equal(a.transmissivity, b.transmissivity)
                np.testing.assert_array_equal(a.usable, b.usable)

    def test_shared_arrays_helpers(self, rng):
        mapping = {"a": rng.normal(size=(3, 4)), "b": np.arange(6)}
        with ShmArena() as arena, ShmAttachment() as attachment:
            specs = shared_arrays(arena, mapping)
            views = attach_arrays(specs, attachment)
            assert set(views) == {"a", "b"}
            for name in mapping:
                np.testing.assert_array_equal(views[name], mapping[name])


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def workload(self, sites):
        return generate_requests(sites, 8, 11)

    def test_service_sweep_identical_over_shm(self, small_ephemeris, workload):
        indices = list(range(0, small_ephemeris.n_samples, 15))
        serial = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=0
        )
        for n_workers in (1, 2, 4):
            pooled = parallel_service_sweep(
                small_ephemeris,
                workload,
                time_indices=indices,
                n_workers=n_workers,
                use_shm=True,
            )
            assert outcomes_identical(serial, pooled)

    def test_service_sweep_shm_matches_pickle_path(self, small_ephemeris, workload):
        indices = list(range(0, small_ephemeris.n_samples, 15))
        pickled = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2, use_shm=False
        )
        over_shm = parallel_service_sweep(
            small_ephemeris, workload, time_indices=indices, n_workers=2, use_shm=True
        )
        assert outcomes_identical(pickled, over_shm)

    def test_no_segments_leak_after_sweep(self, small_ephemeris, workload):
        before = _shm_segment_names()
        parallel_service_sweep(
            small_ephemeris,
            workload,
            time_indices=list(range(0, small_ephemeris.n_samples, 30)),
            n_workers=2,
            use_shm=True,
        )
        assert _shm_segment_names() <= before

    def test_parallel_sweep_shared_arrays_serial_equals_pool(self):
        weights = np.linspace(0.5, 1.5, 11)

        serial = parallel_sweep(
            _weighted_poly, [1.0, 2.0, 3.0], n_workers=0, shared={"weights": weights}
        )
        pooled = parallel_sweep(
            _weighted_poly, [1.0, 2.0, 3.0], n_workers=2, shared={"weights": weights}
        )
        assert serial.results == pooled.results

    def test_parallel_sweep_shared_with_seed(self):
        weights = np.arange(1.0, 5.0)
        serial = parallel_sweep(
            _seeded_weighted, [2.0, 4.0], seed=99, n_workers=0, shared={"w": weights}
        )
        pooled = parallel_sweep(
            _seeded_weighted, [2.0, 4.0], seed=99, n_workers=2, shared={"w": weights}
        )
        for a, b in zip(serial.results, pooled.results):
            assert math.isclose(a, b, rel_tol=0.0, abs_tol=0.0)


def _weighted_poly(x, shared=None):
    return float(np.sum(shared["weights"] * x) + x**2)


def _seeded_weighted(x, seed=None, shared=None):
    rng = np.random.default_rng(seed)
    return float(np.sum(shared["w"]) * x + rng.standard_normal())
