"""Golden regression pins against the committed benchmark results.

The CSVs under ``benchmarks/results/`` are the repo's reproduction of the
paper's headline numbers (Table III, Figs. 5-8). These tests pin those
artifacts — and a couple of live recomputations — against the paper
values with documented tolerances, so a silent physics or sweep
regression can't drift the reproduction without failing CI.

Paper targets: coverage 55.17 %, served 57.75 %, satellite fidelity 0.96
(reproduced at 0.92 with a documented level offset, see EXPERIMENTS.md),
HAP fidelity 0.98, and F(eta=0.7) > 0.9 — the basis of the paper's
eta >= 0.7 admission threshold.
"""

import csv
import math
from pathlib import Path

import pytest

from repro.network.links import LinkPolicy
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def read_series(filename):
    """Parse a results CSV: '#' comment lines, then a header, then rows."""
    path = RESULTS / filename
    rows = [
        line for line in path.read_text().splitlines() if not line.startswith("#")
    ]
    reader = csv.DictReader(rows)
    columns: dict[str, list[float]] = {name: [] for name in reader.fieldnames}
    for record in reader:
        for name, value in record.items():
            columns[name].append(float(value))
    return columns


class TestFig6CoverageGolden:
    def test_paper_value_at_108(self):
        series = read_series("fig6_coverage_vs_satellites.csv")
        at_108 = dict(zip(series["n_satellites"], series["coverage_pct"]))[108.0]
        assert at_108 == pytest.approx(55.17, abs=2.0)

    def test_monotone_in_constellation_size(self):
        series = read_series("fig6_coverage_vs_satellites.csv")
        pcts = series["coverage_pct"]
        assert all(b >= a for a, b in zip(pcts, pcts[1:]))
        assert series["n_satellites"] == sorted(series["n_satellites"])


class TestFig7ServedGolden:
    def test_paper_value_at_108(self):
        series = read_series("fig7_served_requests_vs_satellites.csv")
        at_108 = dict(zip(series["n_satellites"], series["served_pct"]))[108.0]
        assert at_108 == pytest.approx(57.75, abs=2.0)

    def test_served_grows_with_constellation(self):
        series = read_series("fig7_served_requests_vs_satellites.csv")
        served = series["served_pct"]
        assert served[-1] > served[0]
        assert all(0.0 <= s <= 100.0 for s in served)


class TestFig8FidelityGolden:
    def test_value_at_108_within_documented_offset(self):
        series = read_series("fig8_fidelity_vs_satellites.csv")
        at_108 = dict(zip(series["n_satellites"], series["mean_fidelity"]))[108.0]
        # Paper reports 0.96; the reproduction sits at 0.92 with a
        # documented level offset (EXPERIMENTS.md) — pin both bounds.
        assert at_108 == pytest.approx(0.96, abs=0.05)
        assert at_108 > 0.9

    def test_series_stays_above_threshold_floor(self):
        """Every admitted link has eta >= 0.7, so F >= (1+sqrt(0.7))/2 holds
        per link; multi-hop paths dilute it but the mean stays near 0.9."""
        series = read_series("fig8_fidelity_vs_satellites.csv")
        assert all(f > 0.85 for f in series["mean_fidelity"])


class TestFig5ThresholdGolden:
    def test_f_at_paper_threshold(self):
        series = read_series("fig5_fidelity_vs_transmissivity.csv")
        # The eta grid carries float noise (0.7000000000000001) — look up
        # the sample nearest the paper threshold.
        at_07 = min(
            zip(series["transmissivity"], series["fidelity"]),
            key=lambda point: abs(point[0] - 0.7),
        )[1]
        expected = (1.0 + math.sqrt(0.7)) / 2.0
        assert at_07 == pytest.approx(expected, abs=1e-6)
        assert at_07 > 0.9

    def test_threshold_is_paper_default_policy(self):
        assert LinkPolicy().transmissivity_threshold == pytest.approx(0.7)
        assert LinkPolicy().min_elevation_rad == pytest.approx(math.pi / 9)

    def test_series_monotone_and_anchored(self):
        series = read_series("fig5_fidelity_vs_transmissivity.csv")
        fids = series["fidelity"]
        assert fids[0] == pytest.approx(0.5)
        assert all(b >= a for a, b in zip(fids, fids[1:]))

    def test_min_eta_reaching_09_below_paper_threshold(self):
        """Fig. 5's argument: eta = 0.7 is past the F = 0.9 crossing."""
        series = read_series("fig5_fidelity_vs_transmissivity.csv")
        crossing = min(
            eta
            for eta, f in zip(series["transmissivity"], series["fidelity"])
            if f >= 0.9
        )
        assert crossing <= 0.7

    def test_closed_form_matches_csv(self):
        series = read_series("fig5_fidelity_vs_transmissivity.csv")
        for eta, f in zip(series["transmissivity"], series["fidelity"]):
            assert f == pytest.approx(
                float(entanglement_fidelity_from_transmissivity(eta)), abs=1e-12
            )


class TestTable3HapGolden:
    def test_hap_fidelity_near_paper_value(self, hap_simulator):
        """Table III: the HAP bridges inter-LAN pairs at ~0.98 fidelity."""
        outcome = hap_simulator.serve_request("ttu-0", "epb-3", 0.0)
        assert outcome.served
        assert outcome.path == ("ttu-0", "hap-0", "epb-3")
        assert outcome.fidelity == pytest.approx(0.98, abs=0.01)


class TestMultipathGolden:
    """Live pin: k-shortest rescue lifts Fig. 7 service above the paper
    baseline (DESIGN.md §16).

    The strict protocol reproduces 57.75 % served at 108 satellites; the
    multipath strategy rescues a further ~16 % of requests by distilling
    pairs of relaxed-threshold relay links (including successive pairs
    multiplexed over one relay's memory), and may never lose a
    strictly-served request. Both properties are recomputed here from
    the ephemeris so a strategy regression cannot hide behind a stale
    CSV.
    """

    @pytest.fixture(scope="class")
    def fig7_multipath(self):
        from repro.channels.presets import paper_satellite_fso
        from repro.core.analysis import SpaceGroundAnalysis
        from repro.core.evaluation import evaluation_time_indices
        from repro.core.requests import generate_requests
        from repro.data.ground_nodes import all_ground_nodes
        from repro.orbits.ephemeris import generate_movement_sheet
        from repro.orbits.walker import qntn_constellation
        from repro.routing.strategies import StrategyConfig, build_strategy

        ephemeris = generate_movement_sheet(
            qntn_constellation(108), duration_s=86400.0, step_s=30.0
        )
        sites = list(all_ground_nodes())
        model = paper_satellite_fso()
        policy = LinkPolicy()
        strict = SpaceGroundAnalysis(ephemeris, sites, model, policy=policy)
        strategy = build_strategy(
            StrategyConfig(router="k-shortest", k=2), policy=policy
        )
        relaxed = SpaceGroundAnalysis(
            ephemeris, sites, model, policy=strategy.relaxed_policy
        )
        requests = [r.endpoints for r in generate_requests(sites, 100, seed=7)]
        steps = evaluation_time_indices(ephemeris.times_s.size, 100)
        n_strict = n_rescued = 0
        for k in steps:
            etas = strict.serve(requests, int(k))
            n_strict += sum(eta is not None for eta in etas)
            for (src, dst), eta in zip(requests, etas):
                if eta is not None:
                    continue
                plan = strategy.plan(
                    strategy.matrix_candidates(relaxed, src, dst, int(k)),
                    float(ephemeris.times_s[int(k)]),
                )
                n_rescued += plan.served
        total = len(requests) * len(steps)
        return 100.0 * n_strict / total, 100.0 * (n_strict + n_rescued) / total

    def test_baseline_reproduces_the_paper_pin(self, fig7_multipath):
        baseline_pct, _ = fig7_multipath
        assert baseline_pct == pytest.approx(57.75, abs=2.0)

    def test_multipath_strictly_beats_the_baseline(self, fig7_multipath):
        baseline_pct, multipath_pct = fig7_multipath
        assert multipath_pct > baseline_pct

    def test_multipath_clears_the_paper_pin(self, fig7_multipath):
        """The new golden number: rescue service sits above 57.75 %
        (observed 73.84 % — pinned with the same ±2 band as Fig. 7)."""
        _, multipath_pct = fig7_multipath
        assert multipath_pct > 57.75
        assert multipath_pct == pytest.approx(73.84, abs=2.0)
