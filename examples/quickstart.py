#!/usr/bin/env python
"""Quickstart: reproduce the QNTN paper's headline comparison in miniature.

Runs the Fig. 5 threshold experiment and a reduced-size Table III
(36 satellites, 2-minute cadence) in well under a minute. For the full
108-satellite, 30-second-cadence numbers, run the benchmark suite:

    pytest benchmarks/ --benchmark-only -s
"""

from repro import (
    AirGroundArchitecture,
    SpaceGroundArchitecture,
    compare_architectures,
    transmissivity_threshold_experiment,
)
from repro.reporting.tables import render_table_iii


def main() -> None:
    # --- Fig. 5: why the transmissivity threshold is 0.7 -------------------
    threshold = transmissivity_threshold_experiment(step=0.01)
    f_at_07 = threshold.fidelities[70]
    print("Fig. 5 — fidelity vs transmissivity")
    print(f"  F(eta=0.7) = {f_at_07:.4f}  (paper: > 0.9, threshold fixed at 0.7)")
    print(f"  smallest eta reaching F >= 0.9: {threshold.threshold:.2f}")
    print()

    # --- Table III (reduced): space-ground vs air-ground -------------------
    print("Building architectures (36 satellites, 120 s cadence)...")
    space = SpaceGroundArchitecture(36, step_s=120.0)
    air = AirGroundArchitecture(step_s=120.0)
    rows = compare_architectures(
        n_requests=50, n_time_steps=50, seed=7, space=space, air=air
    )
    print(render_table_iii(rows))
    print()
    print("Paper (108 satellites): Space-Ground 55.17% / 57.75% / 0.96")
    print("                        Air-Ground   100%   / 100%   / 0.98")
    print()

    space_row, air_row = rows
    winner = "Air-Ground" if air_row.mean_fidelity > space_row.mean_fidelity else "Space-Ground"
    print(f"Conclusion (matches the paper): {winner} wins on coverage, "
          "served requests, and fidelity — at the cost of HAP endurance "
          "and weather limits.")


if __name__ == "__main__":
    main()
