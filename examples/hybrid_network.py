#!/usr/bin/env python
"""Hybrid architecture study (the paper's proposed future work).

The paper's conclusion suggests "hybrid solutions that combine the
strengths of both space-ground and air-ground architectures". This
example quantifies that proposal: a duty-cycled HAP (finite flight time)
backed by constellations of increasing size.
"""

from repro.core.architecture import (
    AirGroundArchitecture,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.reporting.tables import render_table
from repro.utils.intervals import Interval

#: The HAP flies two 6-hour shifts per day (50 % availability).
DUTY = [Interval(0.0, 21600.0), Interval(43200.0, 64800.0)]

STEP_S = 120.0


def main() -> None:
    ephemeris = generate_movement_sheet(
        qntn_constellation(108), duration_s=86400.0, step_s=STEP_S
    )
    air = AirGroundArchitecture(operational_windows=DUTY, step_s=STEP_S)
    air_alone = air.evaluate(n_requests=50, n_time_steps=50, seed=7)

    rows = [
        (
            "HAP alone (50% duty)",
            f"{air_alone.coverage_percentage:.1f}",
            f"{air_alone.served_percentage:.1f}",
            f"{air_alone.mean_fidelity:.4f}",
        )
    ]
    for n_sats in (36, 72, 108):
        space = SpaceGroundArchitecture(
            n_sats, ephemeris=ephemeris, step_s=STEP_S
        )
        hybrid = HybridArchitecture(space, air)
        space_r = space.evaluate(n_requests=50, n_time_steps=50, seed=7)
        hybrid_r = hybrid.evaluate(n_requests=50, n_time_steps=50, seed=7)
        rows.append(
            (
                f"{n_sats} satellites alone",
                f"{space_r.coverage_percentage:.1f}",
                f"{space_r.served_percentage:.1f}",
                f"{space_r.mean_fidelity:.4f}",
            )
        )
        rows.append(
            (
                f"hybrid (HAP + {n_sats} sats)",
                f"{hybrid_r.coverage_percentage:.1f}",
                f"{hybrid_r.served_percentage:.1f}",
                f"{hybrid_r.mean_fidelity:.4f}",
            )
        )

    print(render_table(
        ["configuration", "coverage %", "served %", "fidelity"],
        rows,
        title="HYBRID ARCHITECTURE STUDY (paper Section V proposal)",
    ))
    print()
    print("=> the constellation fills the HAP's maintenance windows; the HAP "
          "lifts fidelity whenever it flies. Neither alone reaches the "
          "hybrid's coverage.")


if __name__ == "__main__":
    main()
