#!/usr/bin/env python
"""QKD service study: what QNTN's architectures mean for key distribution.

The paper's related work contrasts entanglement distribution with
QKD-only regional networks (trusted-node fiber chains, single-satellite
Micius). This example runs that comparison for the TTU <-> EPB city pair:
secret-key rates, trust assumptions, and the effect of heralding latency
on buffered pairs.
"""

import numpy as np

from repro.channels.presets import paper_hap_fso
from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.core.analysis import AirGroundAnalysis
from repro.core.timing import EntanglementRateModel, path_timing
from repro.data.ground_nodes import all_ground_nodes
from repro.qkd.bbm92 import bbm92_key_rate_hz, qber_from_transmissivity
from repro.qkd.trusted_node import TrustedNodeChain, fiber_bb84_key_rate_hz
from repro.quantum.memory import QuantumMemory
from repro.reporting.tables import render_table

TTU_EPB_KM = 127.0


def fiber_baselines() -> None:
    rows = []
    rows.append(("direct fiber (no relays)", f"{fiber_bb84_key_rate_hz(TTU_EPB_KM):,.0f}", "-"))
    for n in (1, 2, 3, 5):
        chain = TrustedNodeChain(TTU_EPB_KM, n)
        rows.append(
            (f"trusted-node chain, {n} relays",
             f"{chain.key_rate_hz():,.0f}",
             f"{chain.hop_length_km:.0f} km hops")
        )
    print(render_table(
        ["fiber QKD system (TTU <-> EPB)", "key rate (bit/s)", "geometry"],
        rows,
        title="FIBER BASELINES (the paper's related-work comparison)",
    ))
    print("  note: every trusted relay sees the key in the clear, and the\n"
          "  chain can never distribute entanglement (paper Section I-A).\n")


def entanglement_based() -> None:
    sites = list(all_ground_nodes())
    hap = AirGroundAnalysis(
        sites,
        paper_hap_fso(),
        hap_lat_deg=QNTN_HAP_LAT_DEG,
        hap_lon_deg=QNTN_HAP_LON_DEG,
        hap_alt_km=QNTN_HAP_ALTITUDE_KM,
    )
    eta = hap.transmissivity("ttu-0") * hap.transmissivity("epb-0")
    e_z, e_x = qber_from_transmissivity(eta)
    model = EntanglementRateModel(source_rate_hz=1e7, detector_efficiency=0.9)
    pair_rate = float(np.asarray(model.pair_rate_hz(eta)))
    key_rate = bbm92_key_rate_hz(eta, pair_rate)
    print("BBM92 over the air-ground architecture:")
    print(f"  path transmissivity: {eta:.4f}  (QBER_Z {e_z:.3%}, QBER_X {e_x:.3%})")
    print(f"  heralded pair rate:  {pair_rate:,.0f} pairs/s")
    print(f"  secret-key rate:     {key_rate:,.0f} bit/s  — with NO trusted relay\n")

    print("QKD viability boundary vs path transmissivity:")
    for eta_probe in (0.60, 0.70, 0.72, 0.80, 0.93):
        rate = bbm92_key_rate_hz(eta_probe, float(np.asarray(model.pair_rate_hz(eta_probe))))
        verdict = f"{rate:,.0f} bit/s" if rate > 0 else "NO KEY (entropic bound)"
        print(f"  eta = {eta_probe:.2f}: {verdict}")
    print("  => the paper's 0.7 link threshold is almost exactly the QKD\n"
          "     viability boundary for single-relay paths.\n")


def memory_effects() -> None:
    print("Heralding latency vs memory quality (buffered half-pairs):")
    timing = path_timing((700.0, 900.0))  # satellite-grade geometry
    rows = []
    for t1 in (1.0, 0.1, 0.01, 0.001):
        memory = QuantumMemory(t1_s=t1, t2_s=t1)
        f = memory.fidelity_after_storage(0.71, timing.handshake_s)
        rows.append((f"T1 = {t1:g} s", f"{timing.handshake_s * 1e3:.1f} ms", f"{f:.4f}"))
    print(render_table(["memory", "handshake", "delivered fidelity"], rows))
    print("  => satellite handshakes demand millisecond-class memories.\n")


def main() -> None:
    fiber_baselines()
    entanglement_based()
    memory_effects()


if __name__ == "__main__":
    main()
