#!/usr/bin/env python
"""Quantum-layer walkthrough: the machinery beneath the QNTN metrics.

Shows, with explicit density matrices, exactly what the paper's fidelity
numbers mean:

1. amplitude damping of a Bell pair vs transmissivity (Eqs. 3-5),
2. why per-link losses multiply along a routed path,
3. entanglement swapping at a relay,
4. one round of DEJMPS purification (beyond the paper: a countermeasure
   for the low-fidelity regime).
"""

import numpy as np

from repro.network.protocols import (
    dejmps_purification,
    distribute_entanglement,
    entanglement_swap,
    generate_bell_pair,
)
from repro.quantum import (
    bell_state,
    concurrence,
    entanglement_fidelity_from_transmissivity,
    negativity,
)
from repro.quantum.fidelity import pure_state_fidelity
from repro.reporting.tables import render_table


def damping_study() -> None:
    rows = []
    for eta in (1.0, 0.9, 0.7, 0.5, 0.3):
        pair = distribute_entanglement([eta])
        rows.append(
            (
                f"{eta:.1f}",
                f"{pair.fidelity('sqrt'):.4f}",
                f"{pair.fidelity('squared'):.4f}",
                f"{concurrence(pair.rho):.4f}",
                f"{negativity(pair.rho):.4f}",
            )
        )
    print(render_table(
        ["eta", "F (sqrt)", "F (squared)", "concurrence", "negativity"],
        rows,
        title="AMPLITUDE-DAMPED BELL PAIR vs TRANSMISSIVITY (paper Fig. 5)",
    ))
    print("  the paper's 0.7 threshold keeps F(sqrt) above 0.9\n")


def composition_study() -> None:
    path = [0.95, 0.9, 0.85]
    multi = distribute_entanglement(path)
    product = float(np.prod(path))
    single = distribute_entanglement([product])
    print("Path composition (why routing maximises the product of eta):")
    print(f"  hops {path} -> end-to-end eta = {multi.path_transmissivity:.4f}")
    print(f"  fidelity hop-by-hop: {multi.fidelity():.6f}")
    print(f"  fidelity single-shot with product eta: {single.fidelity():.6f}")
    assert abs(multi.fidelity() - single.fidelity()) < 1e-12
    closed = float(entanglement_fidelity_from_transmissivity(product))
    print(f"  closed form (1+sqrt(eta))/2: {closed:.6f}  — all three agree\n")


def swapping_study() -> None:
    print("Entanglement swapping at a relay (satellite or HAP):")
    pair_ab = distribute_entanglement([0.9]).rho
    pair_cd = distribute_entanglement([0.9]).rho
    swapped, probs = entanglement_swap(pair_ab, pair_cd)
    f = pure_state_fidelity(bell_state(), swapped, convention="sqrt")
    print("  two eta=0.9 half-paths, Bell measurement at the relay:")
    for outcome, p in probs.items():
        print(f"    outcome {outcome.value:4s}: probability {p:.4f}")
    print(f"  post-swap fidelity: {f:.4f}\n")


def purification_study() -> None:
    print("DEJMPS purification (one round, two noisy pairs -> one better pair):")
    f_target = 0.85
    phi = generate_bell_pair()
    werner = f_target * phi + (1 - f_target) / 3.0 * (np.eye(4, dtype=complex) - phi)
    p, out = dejmps_purification(werner, werner)
    f_in = pure_state_fidelity(bell_state(), werner, convention="squared")
    f_out = pure_state_fidelity(bell_state(), out, convention="squared")
    print(f"  input fidelity {f_in:.4f} -> output fidelity {f_out:.4f} "
          f"(success probability {p:.3f})")
    print("  => a tool for the space-ground regime, where path fidelity "
          "hovers near the threshold\n")


def main() -> None:
    damping_study()
    composition_study()
    swapping_study()
    purification_study()


if __name__ == "__main__":
    main()
