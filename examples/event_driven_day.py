#!/usr/bin/env python
"""Event-driven day: Poisson request arrivals against both architectures.

The paper evaluates batched requests at fixed time steps; this example
replays a day of *randomly timed* arrivals through the discrete-event
timeline and shows the hour-by-hour service profile — where the
constellation's outages actually land on the clock.

Run time: ~1 minute (36 satellites, 2-minute movement cadence).
"""

import numpy as np

from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.network.hap import HAP
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.network.workload import run_poisson_workload
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.reporting.tables import render_table

RATE_HZ = 1.0 / 300.0  # one request every five minutes on average
DURATION_S = 86400.0


def hour_profile(report) -> list[tuple[int, int, int]]:
    """(hour, arrivals, served) rows."""
    rows = []
    for hour in range(24):
        lo, hi = hour * 3600.0, (hour + 1) * 3600.0
        arrivals = [o for o in report.outcomes if lo <= o.time_s < hi]
        rows.append((hour, len(arrivals), sum(o.served for o in arrivals)))
    return rows


def main() -> None:
    print("Building networks (36 satellites @120 s cadence, plus the HAP)...")
    ephemeris = generate_movement_sheet(
        qntn_constellation(36), duration_s=DURATION_S, step_s=120.0
    )
    sat_net = build_qntn_ground_network()
    attach_satellites(sat_net, ephemeris, paper_satellite_fso())
    sat_sim = NetworkSimulator(sat_net)

    hap_net = build_qntn_ground_network()
    attach_hap(hap_net, HAP(), paper_hap_fso())
    hap_sim = NetworkSimulator(hap_net)

    print("Replaying one day of Poisson arrivals (~288 requests)...")
    sat_report = run_poisson_workload(
        sat_sim, rate_hz=RATE_HZ, duration_s=DURATION_S, seed=7
    )
    hap_report = run_poisson_workload(
        hap_sim, rate_hz=RATE_HZ, duration_s=DURATION_S, seed=7
    )

    print()
    print(
        render_table(
            ["architecture", "arrivals", "served", "served %", "mean fidelity"],
            [
                (
                    "Space-Ground (36 sats)",
                    sat_report.n_requests,
                    sum(o.served for o in sat_report.outcomes),
                    f"{sat_report.served_fraction:.1%}",
                    f"{sat_report.mean_fidelity:.4f}",
                ),
                (
                    "Air-Ground",
                    hap_report.n_requests,
                    sum(o.served for o in hap_report.outcomes),
                    f"{hap_report.served_fraction:.1%}",
                    f"{hap_report.mean_fidelity:.4f}",
                ),
            ],
            title="EVENT-DRIVEN DAY (identical arrival process, seed 7)",
        )
    )

    print("\nHour-by-hour profile of the space-ground service:")
    bars = []
    for hour, arrivals, served in hour_profile(sat_report):
        frac = served / arrivals if arrivals else 0.0
        bars.append(f"  {hour:02d}h  {'#' * int(round(frac * 20)):<20s} "
                    f"{served}/{arrivals}")
    print("\n".join(bars))
    print("\n=> outages are not clustered at any hour: the 53 deg Walker shell")
    print("   spreads its gaps uniformly across the day, so adding more")
    print("   satellites (or the HAP) is the only way to close them.")


if __name__ == "__main__":
    main()
