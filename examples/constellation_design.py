#!/usr/bin/env python
"""Constellation design study: how many satellites does QNTN need?

Walks the paper's space-ground design loop end to end:

1. build the Table II constellation incrementally (Walker seed + gap
   planes),
2. generate STK-style movement sheets (and round-trip them through CSV,
   the paper's exchange format),
3. compute access windows from each city,
4. sweep constellation size against coverage (Fig. 6's question).

Run time: ~1 minute (uses a 60 s cadence instead of the paper's 30 s).
"""

import numpy as np

from repro.core.sweeps import run_constellation_sweep
from repro.data.ground_nodes import qntn_local_networks
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet
from repro.orbits.visibility import access_windows, elevation_and_range
from repro.orbits.walker import qntn_constellation, qntn_plane_order
from repro.reporting.tables import render_table


def main() -> None:
    # --- 1. the Table II constellation -------------------------------------
    elements = qntn_constellation(108)
    print(f"QNTN constellation: {len(elements)} satellites, "
          f"altitude {elements.a[0] - 6371:.0f} km, "
          f"inclination {np.degrees(elements.inc[0]):.0f} deg")
    print(f"planes (deployment order): {qntn_plane_order()}")
    print()

    # --- 2. movement sheets (the STK-substitute step) -----------------------
    ephemeris = generate_movement_sheet(elements, duration_s=86400.0, step_s=60.0)
    print(f"movement sheet: {ephemeris.n_platforms} platforms x "
          f"{ephemeris.n_samples} samples at 60 s cadence")
    csv_text = ephemeris.subset(range(2)).to_csv_string()
    reimported = Ephemeris.from_csv_string(csv_text)
    assert np.array_equal(
        reimported.positions_ecef_km, ephemeris.subset(range(2)).positions_ecef_km
    )
    print("movement-sheet CSV round trip: OK (paper Section III-C workflow)")
    print()

    # --- 3. access windows from each city ----------------------------------
    print("Access statistics for satellite sat-000 (elevation >= 20 deg):")
    for lan in qntn_local_networks():
        site = lan.nodes[0]
        _, el, _ = elevation_and_range(
            site.lat_rad, site.lon_rad, site.alt_km, ephemeris.positions_ecef_km[0]
        )
        windows = access_windows(ephemeris.times_s, el, np.pi / 9)
        total_min = sum(w.duration_s for w in windows) / 60.0
        peak = max((np.degrees(w.peak_elevation_rad) for w in windows), default=0.0)
        print(f"  {lan.name:5s}: {len(windows):2d} passes, "
              f"{total_min:5.1f} min total, best pass peaks at {peak:.0f} deg")
    print()

    # --- 4. the sizing sweep (Fig. 6) ---------------------------------------
    sweep = run_constellation_sweep(
        sizes=list(range(6, 109, 12)) + [108],
        ephemeris=ephemeris,
        step_s=60.0,
        n_requests=50,
        n_time_steps=50,
    )
    print(
        render_table(
            ["satellites", "coverage %", "served %", "fidelity"],
            [
                (
                    p.n_satellites,
                    f"{p.coverage.percentage:.2f}",
                    f"{p.service.served_percentage:.2f}",
                    f"{p.service.mean_fidelity:.4f}",
                )
                for p in sweep.points
            ],
            title="CONSTELLATION SIZING (paper Fig. 6/7/8 at 60 s cadence)",
        )
    )
    print()
    print(f"=> even 108 satellites cover only {sweep.coverage_percentages[-1]:.1f}% "
          "of the day (paper: 55.17%) — the motivation for the air-ground study.")


if __name__ == "__main__":
    main()
