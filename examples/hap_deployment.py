#!/usr/bin/env python
"""Air-ground deployment study: where the HAP's advantages and limits lie.

Reproduces the paper's Section IV-C result (100 % coverage and service,
fidelity ~0.98 under ideal conditions), then relaxes the ideal-conditions
assumptions the paper flags in Sections III-D and V:

* finite flight time (duty cycle),
* weather (extinction + turbulence multipliers),
* platform pointing jitter (vibration sensitivity).
"""

import math

import numpy as np

from repro.channels.atmosphere import WeatherCondition, WeatherModel
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_atmosphere, paper_hap_fso
from repro.core.architecture import AirGroundArchitecture
from repro.network.links import LinkPolicy
from repro.reporting.tables import render_table
from repro.utils.intervals import Interval


def ideal_case() -> None:
    arch = AirGroundArchitecture(duration_s=86400.0, step_s=600.0)
    result = arch.evaluate(n_requests=100, n_time_steps=50, seed=7)
    print("Ideal conditions (paper Section IV-C):")
    print(f"  coverage {result.coverage_percentage:.1f}%  "
          f"served {result.served_percentage:.1f}%  "
          f"fidelity {result.mean_fidelity:.4f}   (paper: 100 / 100 / 0.98)")
    print()


def duty_cycle_study() -> None:
    rows = []
    for hours_up in (24, 18, 12, 6):
        windows = [Interval(0.0, hours_up * 3600.0)] if hours_up < 24 else None
        arch = AirGroundArchitecture(
            duration_s=86400.0, step_s=600.0, operational_windows=windows
        )
        result = arch.evaluate(n_requests=50, n_time_steps=50, seed=7)
        rows.append(
            (f"{hours_up} h/day", f"{result.coverage_percentage:.1f}",
             f"{result.served_percentage:.1f}")
        )
    print(render_table(
        ["flight time", "coverage %", "served %"],
        rows,
        title="FINITE FLIGHT TIME (paper Section V limitation)",
    ))
    print()


def weather_study() -> None:
    base = paper_hap_fso()
    weather = WeatherModel()
    slant = math.hypot(72.0, 30.0)
    elev = math.atan2(30.0, 72.0)
    policy = LinkPolicy()
    rows = []
    for condition in WeatherCondition:
        model = FSOChannelModel(
            wavelength_m=base.wavelength_m,
            beam_waist_m=base.beam_waist_m,
            rx_aperture_radius_m=base.rx_aperture_radius_m,
            receiver_efficiency=base.receiver_efficiency,
            atmosphere=weather.perturbed_atmosphere(paper_atmosphere(), condition),
            turbulence=True,
            uplink=False,
            cn2_scale=weather.cn2_multiplier(condition),
        )
        eta = float(np.asarray(model.transmissivity(slant, elev, 30.0)))
        usable = policy.admits(eta, elev, True)
        rows.append((condition.value, f"{eta:.4f}", "yes" if usable else "NO"))
    print(render_table(
        ["weather", "link eta", "usable (eta >= 0.7)?"],
        rows,
        title="WEATHER SENSITIVITY OF THE HAP LINK",
    ))
    print()


def jitter_study() -> None:
    base = paper_hap_fso()
    slant = math.hypot(72.0, 30.0)
    elev = math.atan2(30.0, 72.0)
    rows = []
    for jitter_urad in (0.0, 0.5, 1.0, 2.0, 4.0):
        model = FSOChannelModel(
            wavelength_m=base.wavelength_m,
            beam_waist_m=base.beam_waist_m,
            rx_aperture_radius_m=base.rx_aperture_radius_m,
            receiver_efficiency=base.receiver_efficiency,
            atmosphere=base.atmosphere,
            turbulence=True,
            uplink=False,
            pointing_jitter_rad=jitter_urad * 1e-6,
        )
        eta = float(np.asarray(model.transmissivity(slant, elev, 30.0)))
        rows.append((f"{jitter_urad:.1f} urad", f"{eta:.4f}"))
    print(render_table(
        ["pointing jitter", "link eta"],
        rows,
        title="VIBRATION / POINTING SENSITIVITY",
    ))
    print()


def main() -> None:
    ideal_case()
    duty_cycle_study()
    weather_study()
    jitter_study()
    print("=> the HAP wins under ideal conditions but loses its lead as the "
          "paper's non-ideal factors bite — exactly the caveat in Section V.")


if __name__ == "__main__":
    main()
