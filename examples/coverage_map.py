#!/usr/bin/env python
"""Coverage-map study: where the constellation's 55 % comes from.

Renders the Tennessee region as an ASCII coverage heat map, prints one
satellite's ground track, per-city pass statistics, and the regional
outage profile (the longest gaps an operator must bridge).
"""

import numpy as np

from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.passes import coverage_gaps, site_pass_statistics
from repro.data.ground_nodes import all_ground_nodes, qntn_local_networks
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.groundtrack import coverage_grid, ground_track, render_ascii_map
from repro.orbits.walker import qntn_constellation
from repro.reporting.tables import render_table


def main() -> None:
    print("Propagating the 108-satellite constellation (1 day, 60 s cadence)...")
    ephemeris = generate_movement_sheet(
        qntn_constellation(108), duration_s=86400.0, step_s=60.0
    )

    # --- ground track ---------------------------------------------------------
    lat, lon = ground_track(ephemeris, 0)
    print(f"\nsat-000 ground track: latitude span {lat.min():.1f}..{lat.max():.1f} deg "
          "(bounded by the 53 deg inclination)")

    # --- regional coverage map -------------------------------------------------
    print("\nGeometric coverage map (fraction of day with a satellite above "
          "20 deg elevation):")
    grid = coverage_grid(ephemeris, resolution_deg=0.5)
    cities = {
        "T": (36.1757, -85.5066),  # TTU
        "O": (35.92, -84.31),      # ORNL
        "E": (35.0416, -85.2799),  # EPB
    }
    print(render_ascii_map(grid, markers=cities))
    print("markers: T = TTU, O = ORNL, E = EPB")

    # --- pass statistics under the full link policy ------------------------------
    analysis = SpaceGroundAnalysis(
        ephemeris, list(all_ground_nodes()), paper_satellite_fso()
    )
    rows = []
    for lan in qntn_local_networks():
        stats = site_pass_statistics(analysis, lan.nodes[0].name)
        rows.append(
            (
                lan.name,
                stats.n_passes,
                f"{stats.total_contact_s / 60:.0f}",
                f"{stats.mean_duration_s / 60:.1f}",
                f"{stats.max_gap_s / 60:.0f}",
            )
        )
    print()
    print(
        render_table(
            ["city", "usable passes/day", "contact min", "mean pass min", "worst gap min"],
            rows,
            title="PER-CITY CONTACT STATISTICS (eta >= 0.7 links only)",
        )
    )

    # --- regional outage profile -----------------------------------------------
    gaps = coverage_gaps(analysis)
    print(f"\nregional coverage: {gaps.total_contact_s / 864:.1f}% of the day "
          f"in {gaps.n_passes} connected intervals")
    print(f"worst regional outage: {gaps.max_gap_s / 60:.0f} minutes "
          f"(mean {gaps.mean_gap_s / 60:.1f} min)")
    print("=> the outage profile, not just the 55% average, is what a hybrid "
          "HAP deployment has to fill (see examples/hybrid_network.py).")


if __name__ == "__main__":
    main()
